#include "src/core/upgrade.h"

#include <algorithm>

#include "src/core/router.h"
#include "src/fault/fault_injector.h"
#include "src/obs/observer.h"
#include "src/sim/log.h"

namespace npr {
namespace {

// §4.5: an ISTORE/SRAM access from the StrongARM costs ~40 cycles; the
// atomic cutover window is the migrated state words plus the image flip.
constexpr uint64_t kCyclesPerAccess = 40;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

const char* UpgradePhaseName(UpgradePhase phase) {
  switch (phase) {
    case UpgradePhase::kIdle:
      return "idle";
    case UpgradePhase::kShadow:
      return "shadow";
    case UpgradePhase::kCutover:
      return "cutover";
    case UpgradePhase::kSoak:
      return "soak";
    case UpgradePhase::kPromoted:
      return "promoted";
    case UpgradePhase::kRolledBack:
      return "rolled_back";
    case UpgradePhase::kAborted:
      return "aborted";
  }
  return "unknown";
}

UpgradeOrchestrator::UpgradeOrchestrator(Router& router, UpgradeConfig config)
    : router_(router), cfg_(std::move(config)) {
  router_.SetUpgrade(this);
}

UpgradeOrchestrator::~UpgradeOrchestrator() { router_.SetUpgrade(nullptr); }

void UpgradeOrchestrator::Schedule(SimTime dt, void (UpgradeOrchestrator::*fn)()) {
  const uint64_t epoch = epoch_;
  router_.engine().ScheduleIn(dt, [this, epoch, fn] {
    if (epoch == epoch_) {
      (this->*fn)();
    }
  });
}

bool UpgradeOrchestrator::Begin(uint32_t fid, const VrpProgram& next, uint64_t image_checksum,
                                StateMigrator migrate) {
  last_error_.clear();
  if (InFlight()) {
    last_error_ = "upgrade already in flight";
    return false;
  }
  FlowMeta* meta = router_.flow_table().GetMutable(fid);
  if (meta == nullptr || meta->where != Where::kMicroEngine) {
    last_error_ = "fid is not an installed MicroEngine forwarder";
    return false;
  }
  if (image_checksum != 0 && VrpImageChecksum(next) != image_checksum) {
    last_error_ = "image checksum mismatch";
    router_.stats().upgrade_checksum_rejects += 1;
    return false;
  }
  AdmissionResult admit = router_.admission().CheckReplaceMicroEngine(meta->me_program_id, next);
  if (!admit.admitted) {
    last_error_ = admit.reason;
    return false;
  }
  const VrpProgram* active = router_.istore().Get(meta->me_program_id);
  if (active == nullptr) {
    last_error_ = "handle has no active image";
    return false;
  }

  epoch_ += 1;
  report_ = UpgradeReport{};
  fid_ = fid;
  handle_ = meta->me_program_id;
  old_program_ = *active;
  new_program_ = next;
  old_cost_ = router_.admission().CommittedCost(handle_);
  new_cost_ = admit.worst_case;
  old_addr_ = meta->state_addr;
  old_bytes_ = meta->state_bytes;
  new_bytes_ = next.flow_state_bytes;
  new_addr_ = new_bytes_ > 0 ? router_.sram_arena().Alloc(new_bytes_) : 0;
  migrate_ = std::move(migrate);
  first_fault_at_ = 0;
  detected_at_ = 0;
  rollback_pending_ = false;
  have_pending_ = false;

  // Snapshot migration: the shadow image needs a plausible state to run
  // against; the authoritative migration happens again at cutover.
  if (!MigrateState()) {
    FreeNewRegion();
    phase_ = UpgradePhase::kIdle;
    last_error_ = "state migration vetoed the old layout";
    return false;
  }
  if (!router_.istore().StageReplace(handle_, next, new_addr_)) {
    FreeNewRegion();
    phase_ = UpgradePhase::kIdle;
    last_error_ = "ISTORE staging failed";
    return false;
  }
  phase_ = UpgradePhase::kShadow;
  report_.began_at = router_.engine().now();
  router_.stats().upgrades_started += 1;
  Schedule(cfg_.shadow_window_ps, &UpgradeOrchestrator::EvaluateShadow);
  return true;
}

bool UpgradeOrchestrator::MigrateState() {
  BackingStore& sram = router_.chip().memory().sram_store();
  std::vector<uint8_t> old_state(old_bytes_);
  if (old_bytes_ > 0) {
    sram.Read(old_addr_, old_state);
  }
  std::vector<uint8_t> new_state(new_bytes_, 0);
  if (migrate_) {
    if (!migrate_(old_state, new_state)) {
      return false;
    }
  } else {
    const size_t n = std::min<size_t>(old_state.size(), new_state.size());
    std::copy_n(old_state.begin(), n, new_state.begin());
  }
  if (new_bytes_ > 0) {
    sram.Write(new_addr_, new_state);
  }
  report_.migrated_bytes = old_bytes_ + new_bytes_;
  return true;
}

void UpgradeOrchestrator::FreeNewRegion() {
  if (new_bytes_ > 0) {
    router_.sram_arena().Free(new_addr_, new_bytes_);
    new_addr_ = 0;
    new_bytes_ = 0;
  }
}

void UpgradeOrchestrator::FreeOldRegion() {
  if (old_bytes_ > 0) {
    router_.sram_arena().Free(old_addr_, old_bytes_);
    old_addr_ = 0;
    old_bytes_ = 0;
  }
}

double UpgradeOrchestrator::ShadowDivergenceRate() const {
  return report_.shadow_packets == 0
             ? 0.0
             : static_cast<double>(report_.shadow_divergences) /
                   static_cast<double>(report_.shadow_packets);
}

double UpgradeOrchestrator::SoakDivergenceRate() const {
  return report_.soak_packets == 0 ? 0.0
                                   : static_cast<double>(report_.soak_divergences) /
                                         static_cast<double>(report_.soak_packets);
}

void UpgradeOrchestrator::EvaluateShadow() {
  if (phase_ != UpgradePhase::kShadow) {
    return;
  }
  if (report_.shadow_packets < cfg_.shadow_min_packets) {
    // Not enough evidence yet; extend the window.
    Schedule(cfg_.probe_period_ps, &UpgradeOrchestrator::EvaluateShadow);
    return;
  }
  if (ShadowDivergenceRate() > cfg_.shadow_abort_divergence) {
    DoAbort("shadow divergence rate above threshold", /*record_episode=*/false);
    return;
  }
  phase_ = UpgradePhase::kCutover;
  cutover_scheduled_at_ = router_.engine().now();
  Schedule(0, &UpgradeOrchestrator::CutoverStep);
  Schedule(cfg_.step_deadline_ps, &UpgradeOrchestrator::CutoverWatchdog);
}

void UpgradeOrchestrator::CutoverStep() {
  if (phase_ != UpgradePhase::kCutover) {
    return;
  }
  FaultInjector* fault = router_.fault_injector();
  if (fault != nullptr && fault->ShouldCrashUpgrade()) {
    // The step event is lost mid-way: nothing was committed, nothing is
    // touched. The watchdog notices the phase never advanced and aborts.
    return;
  }
  DoCutover();
}

void UpgradeOrchestrator::CutoverWatchdog() {
  if (phase_ != UpgradePhase::kCutover) {
    return;
  }
  // The step never completed. The commit never happened, so the old image
  // never stopped serving — abort is clean and lossless.
  if (first_fault_at_ == 0) {
    first_fault_at_ = cutover_scheduled_at_;
  }
  detected_at_ = router_.engine().now();
  DoAbort("cutover step crashed; watchdog aborted the upgrade", /*record_episode=*/true);
}

void UpgradeOrchestrator::DoCutover() {
  // The authoritative migration: live old state -> new layout, overwriting
  // whatever the shadow runs accumulated in the staged region.
  if (!MigrateState()) {
    DoAbort("state migration vetoed at cutover", /*record_episode=*/false);
    return;
  }
  router_.istore().CommitReplace(handle_);
  FlowMeta* meta = router_.flow_table().GetMutable(fid_);
  meta->state_addr = new_addr_;
  meta->state_bytes = new_bytes_;
  router_.admission().ReplaceMicroEngine(handle_, new_cost_);

  const uint64_t state_words = (Arena::RoundUp(old_bytes_, 4) + Arena::RoundUp(new_bytes_, 4)) / 4;
  report_.cutover_pause_cycles = (state_words + 2) * kCyclesPerAccess;
  report_.cutover_at = router_.engine().now();
  phase_ = UpgradePhase::kSoak;
  Schedule(cfg_.probe_period_ps, &UpgradeOrchestrator::SoakTick);
  Schedule(cfg_.soak_window_ps, &UpgradeOrchestrator::EvaluateSoak);
}

void UpgradeOrchestrator::SoakTick() {
  if (phase_ != UpgradePhase::kSoak) {
    return;
  }
  if (cfg_.soak_probe && !cfg_.soak_probe()) {
    if (first_fault_at_ == 0) {
      first_fault_at_ = router_.engine().now();
    }
    detected_at_ = router_.engine().now();
    DoRollback("external probe failed during soak");
    return;
  }
  if (report_.soak_packets >= cfg_.soak_min_packets &&
      SoakDivergenceRate() > cfg_.soak_rollback_divergence) {
    detected_at_ = router_.engine().now();
    DoRollback("soak divergence rate above threshold");
    return;
  }
  Schedule(cfg_.probe_period_ps, &UpgradeOrchestrator::SoakTick);
}

void UpgradeOrchestrator::EvaluateSoak() {
  if (phase_ != UpgradePhase::kSoak) {
    return;
  }
  if (report_.soak_packets < cfg_.soak_min_packets) {
    Schedule(cfg_.probe_period_ps, &UpgradeOrchestrator::EvaluateSoak);
    return;
  }
  if (SoakDivergenceRate() > cfg_.soak_rollback_divergence) {
    detected_at_ = router_.engine().now();
    DoRollback("soak divergence rate above threshold");
    return;
  }
  DoPromote();
}

void UpgradeOrchestrator::RollbackFromTrap() {
  if (phase_ != UpgradePhase::kSoak) {
    return;
  }
  DoRollback("new image trapped during soak");
}

void UpgradeOrchestrator::DoPromote() {
  router_.istore().PromoteReplace(handle_);
  FreeOldRegion();
  phase_ = UpgradePhase::kPromoted;
  report_.finished_at = router_.engine().now();
  router_.stats().upgrades_promoted += 1;
  NPR_INFO("upgrade: fid %u promoted (%llu shadow, %llu soak packets)", fid_,
           static_cast<unsigned long long>(report_.shadow_packets),
           static_cast<unsigned long long>(report_.soak_packets));
}

void UpgradeOrchestrator::DoRollback(const std::string& reason) {
  const SimTime now = router_.engine().now();
  router_.istore().RevertReplace(handle_);
  FlowMeta* meta = router_.flow_table().GetMutable(fid_);
  if (meta != nullptr) {
    meta->state_addr = old_addr_;
    meta->state_bytes = old_bytes_;
  }
  router_.admission().ReplaceMicroEngine(handle_, old_cost_);
  FreeNewRegion();
  phase_ = UpgradePhase::kRolledBack;
  report_.finished_at = now;
  report_.error = reason;

  UpgradeRollbackRecord rec;
  rec.fault_at = first_fault_at_ != 0 ? first_fault_at_ : now;
  rec.detected_at = detected_at_ != 0 ? detected_at_ : now;
  rec.recovered_at = now;
  rec.reason = reason;
  rollbacks_.push_back(std::move(rec));
  router_.stats().upgrade_rollbacks += 1;
  NPR_OBS_HOOK(router_.observer(), TriggerDump("upgrade_rollback", fid_));
  NPR_WARN("upgrade: fid %u rolled back (%s)", fid_, reason.c_str());
}

void UpgradeOrchestrator::DoAbort(const std::string& reason, bool record_episode) {
  const SimTime now = router_.engine().now();
  router_.istore().CancelReplace(handle_);
  FreeNewRegion();
  phase_ = UpgradePhase::kAborted;
  report_.finished_at = now;
  report_.error = reason;
  if (record_episode) {
    UpgradeRollbackRecord rec;
    rec.fault_at = first_fault_at_ != 0 ? first_fault_at_ : now;
    rec.detected_at = detected_at_ != 0 ? detected_at_ : now;
    rec.recovered_at = now;
    rec.reason = reason;
    rollbacks_.push_back(std::move(rec));
  }
  router_.stats().upgrade_aborts += 1;
  NPR_WARN("upgrade: fid %u aborted (%s)", fid_, reason.c_str());
}

uint32_t UpgradeOrchestrator::held_state_bytes() const {
  switch (phase_) {
    case UpgradePhase::kShadow:
    case UpgradePhase::kCutover:
      // Staged region; the flow table still points at the old one.
      return Arena::RoundUp(new_bytes_, 4);
    case UpgradePhase::kSoak:
      // Retained region; the flow table points at the new one.
      return Arena::RoundUp(old_bytes_, 4);
    default:
      return 0;
  }
}

void UpgradeOrchestrator::RecordDecisions(uint32_t handle) {
  audit_armed_ = true;
  audit_handle_ = handle;
  decisions_.clear();
}

void UpgradeOrchestrator::BeginPacket(uint32_t handle, std::span<const uint8_t> mp) {
  if (handle != handle_ || (phase_ != UpgradePhase::kShadow && phase_ != UpgradePhase::kSoak)) {
    return;
  }
  pending_len_ = std::min<size_t>(mp.size(), pending_mp_.size());
  std::copy_n(mp.begin(), pending_len_, pending_mp_.begin());
  have_pending_ = true;
}

void UpgradeOrchestrator::EndPacket(uint32_t handle, std::span<const uint8_t> mp,
                                    const VrpOutcome& active) {
  const SimTime now = router_.engine().now();
  if (handle == handle_ && have_pending_ &&
      (phase_ == UpgradePhase::kShadow || phase_ == UpgradePhase::kSoak)) {
    // The counterpart image runs on the pristine snapshot against its own
    // state region: the staged (new) image under shadow, the retained (old)
    // image under soak — which is what keeps the retained state current for
    // a hitless rollback. Functional only: no cycles charged, no Rng.
    const bool shadowing = phase_ == UpgradePhase::kShadow;
    const VrpProgram& counterpart = shadowing ? new_program_ : old_program_;
    const uint32_t counterpart_addr = shadowing ? new_addr_ : old_addr_;
    std::array<uint8_t, 64> copy = pending_mp_;
    VrpOutcome other = router_.vrp().Run(counterpart, std::span<uint8_t>(copy).first(pending_len_),
                                         counterpart_addr, &router_.config().budget);
    const bool diverged =
        other.action != active.action || other.queue != active.queue ||
        !std::equal(mp.begin(), mp.begin() + static_cast<std::ptrdiff_t>(pending_len_),
                    copy.begin());
    if (shadowing) {
      report_.shadow_packets += 1;
      if (diverged) {
        report_.shadow_divergences += 1;
        router_.stats().upgrade_divergences += 1;
        if (first_fault_at_ == 0) {
          first_fault_at_ = now;
        }
      }
    } else {
      report_.soak_packets += 1;
      if (diverged) {
        report_.soak_divergences += 1;
        router_.stats().upgrade_divergences += 1;
        if (first_fault_at_ == 0) {
          first_fault_at_ = now;
        }
      }
      if (active.action == VrpAction::kTrap && !rollback_pending_) {
        // Never mutate the ISTORE from inside a classify call: the general
        // chain the input stage iterates holds program pointers.
        rollback_pending_ = true;
        if (first_fault_at_ == 0) {
          first_fault_at_ = now;
        }
        detected_at_ = now;
        Schedule(0, &UpgradeOrchestrator::RollbackFromTrap);
      }
    }
  }
  have_pending_ = false;

  if (audit_armed_ && handle == audit_handle_) {
    uint64_t h = FnvMix(0xcbf29ce484222325ULL, decisions_.size());
    h = FnvMix(h, static_cast<uint64_t>(active.action));
    h = FnvMix(h, active.queue ? static_cast<uint64_t>(*active.queue) : ~0ULL);
    for (uint8_t b : mp) {
      h ^= b;
      h *= 0x100000001b3ULL;
    }
    decisions_.push_back(h);
  }
}

}  // namespace npr
