// Allocators for laying out simulated SRAM and Scratch.
//
// The fixed infrastructure (queues, readiness words) is laid out once at
// construction and never freed, but flow-state regions come and go with
// install/remove and with in-service upgrades, so the arena keeps an
// address-ordered free list: Free() coalesces with neighbors and Alloc()
// reuses a freed block before extending the bump frontier. `outstanding()`
// is the exact number of live bytes, which RouterInvariants reconciles
// against the flow table's reservations (a remove that leaks its `.state`
// binding is a caught violation, not a slow death by arena exhaustion).

#ifndef SRC_CORE_MEM_MAP_H_
#define SRC_CORE_MEM_MAP_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace npr {

class Arena {
 public:
  Arena(uint32_t base, uint32_t size) : base_(base), size_(size), next_(base) {}

  // Allocates `bytes` aligned to `align`; asserts on exhaustion (layout is
  // static and sized at construction — running out is a configuration bug).
  // Sizes are tracked rounded up to `align`, which leaves the bump-frontier
  // address sequence identical to a free-list-less arena (the frontier is
  // re-aligned on every allocation either way).
  uint32_t Alloc(uint32_t bytes, uint32_t align = 4) {
    const uint32_t rounded = RoundUp(bytes, align);
    // Address-ordered first fit over freed blocks (deterministic: the scan
    // order is a pure function of the alloc/free history).
    for (size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].bytes >= rounded && free_[i].addr % align == 0) {
        const uint32_t addr = free_[i].addr;
        free_[i].addr += rounded;
        free_[i].bytes -= rounded;
        if (free_[i].bytes == 0) {
          free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
        }
        outstanding_ += rounded;
        return addr;
      }
    }
    next_ = RoundUp(next_, align);
    const uint32_t addr = next_;
    next_ += rounded;
    assert(next_ <= base_ + size_ && "arena exhausted");
    outstanding_ += rounded;
    return addr;
  }

  // Returns a block obtained from Alloc(bytes, align). Coalesces with
  // adjacent free blocks so repeated install/remove cycles reuse one block
  // instead of fragmenting.
  void Free(uint32_t addr, uint32_t bytes, uint32_t align = 4) {
    const uint32_t rounded = RoundUp(bytes, align);
    if (rounded == 0) {
      return;
    }
    assert(outstanding_ >= rounded && "arena: freeing more than allocated");
    outstanding_ -= rounded;
    // Insert in address order, then merge with both neighbors.
    size_t i = 0;
    while (i < free_.size() && free_[i].addr < addr) {
      ++i;
    }
    free_.insert(free_.begin() + static_cast<std::ptrdiff_t>(i), Block{addr, rounded});
    if (i + 1 < free_.size() && free_[i].addr + free_[i].bytes == free_[i + 1].addr) {
      free_[i].bytes += free_[i + 1].bytes;
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    }
    if (i > 0 && free_[i - 1].addr + free_[i - 1].bytes == free_[i].addr) {
      free_[i - 1].bytes += free_[i].bytes;
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }

  uint32_t remaining() const { return base_ + size_ - next_; }
  uint32_t used() const { return next_ - base_; }
  // Live bytes: allocated minus freed (freed-then-reused counts once).
  uint32_t outstanding() const { return outstanding_; }

  static uint32_t RoundUp(uint32_t v, uint32_t align) {
    return (v + align - 1) / align * align;
  }

 private:
  struct Block {
    uint32_t addr;
    uint32_t bytes;
  };

  const uint32_t base_;
  const uint32_t size_;
  uint32_t next_;
  uint32_t outstanding_ = 0;
  std::vector<Block> free_;
};

}  // namespace npr

#endif  // SRC_CORE_MEM_MAP_H_
