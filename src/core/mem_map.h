// Simple bump allocators for laying out simulated SRAM and Scratch.

#ifndef SRC_CORE_MEM_MAP_H_
#define SRC_CORE_MEM_MAP_H_

#include <cassert>
#include <cstdint>

namespace npr {

class Arena {
 public:
  Arena(uint32_t base, uint32_t size) : base_(base), size_(size), next_(base) {}

  // Allocates `bytes` aligned to `align`; asserts on exhaustion (layout is
  // static and sized at construction — running out is a configuration bug).
  uint32_t Alloc(uint32_t bytes, uint32_t align = 4) {
    next_ = (next_ + align - 1) / align * align;
    const uint32_t addr = next_;
    next_ += bytes;
    assert(next_ <= base_ + size_ && "arena exhausted");
    return addr;
  }

  uint32_t remaining() const { return base_ + size_ - next_; }
  uint32_t used() const { return next_ - base_; }

 private:
  const uint32_t base_;
  const uint32_t size_;
  uint32_t next_;
};

}  // namespace npr

#endif  // SRC_CORE_MEM_MAP_H_
