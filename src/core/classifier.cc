#include "src/core/classifier.h"

#include "src/net/ethernet.h"
#include "src/net/ipv4.h"
#include "src/net/tcp.h"
#include "src/net/udp.h"
#include "src/net/wire.h"

namespace npr {

ClassifyOutcome Classifier::Classify(std::span<const uint8_t> frame_head) {
  ClassifyOutcome out;

  auto eth = EthernetHeader::Parse(frame_head);
  if (!eth || eth->ethertype != kEtherTypeIpv4) {
    out.target = ClassifyOutcome::Target::kDrop;
    out.reason = "non-ip";
    return out;
  }
  const auto ip_bytes = frame_head.subspan(kEthHeaderBytes);
  // Header validation is the classifier's job (§4.4). With a 64-byte head
  // the full IP header (sans long options) is present.
  if (!Ipv4Header::Validate(ip_bytes)) {
    out.target = ClassifyOutcome::Target::kDrop;
    out.reason = "bad-ip-header";
    return out;
  }
  auto ip = Ipv4Header::Parse(ip_bytes);

  // Exceptional conditions handled above the MicroEngines (§3.2).
  if (ip->ttl <= 1) {
    out.target = ClassifyOutcome::Target::kStrongArmLocal;
    out.reason = "ttl-expired";
    return out;
  }
  if (ip->has_options()) {
    out.target = ClassifyOutcome::Target::kStrongArmLocal;
    out.reason = "ip-options";
    return out;
  }

  // Control protocols ride to the Pentium's control forwarders, isolated
  // from data traffic by their own queue (§4.1).
  if (ip->protocol == kIpProtoOspfLite) {
    out.target = ClassifyOutcome::Target::kPentium;
    out.reason = "control";
    return out;
  }

  // Full classifier: hash IP and TCP headers separately, combine, and look
  // up flow metadata (§4.5).
  if (mode_ == ClassifierMode::kFlowTable) {
    uint16_t sport = 0;
    uint16_t dport = 0;
    const auto l4 = ip_bytes.subspan(ip->header_bytes());
    if ((ip->protocol == kIpProtoTcp || ip->protocol == kIpProtoUdp) && l4.size() >= 4) {
      sport = ReadBe16(l4, 0);
      dport = ReadBe16(l4, 2);
    }
    const uint64_t ip_hash = hash_.Hash64(static_cast<uint64_t>(ip->src) << 32 | ip->dst);
    const uint64_t l4_hash = hash_.Hash64(static_cast<uint64_t>(sport) << 16 | dport);
    (void)hash_.Combine(ip_hash, l4_hash);  // table index in hardware

    const FlowMeta* flow = flows_.LookupTuple(FlowKey::Tuple(ip->src, ip->dst, sport, dport));
    if (flow != nullptr) {
      out.flow = flow;
      switch (flow->where) {
        case Where::kStrongArm:
          out.target = ClassifyOutcome::Target::kStrongArmLocal;
          out.reason = "sa-flow";
          return out;
        case Where::kPentium:
          out.target = ClassifyOutcome::Target::kPentium;
          out.reason = "pe-flow";
          return out;
        case Where::kMicroEngine:
          break;  // per-flow VRP program runs in the input stage
      }
    }
  } else {
    // Fast path: one-cycle hash of the destination address (§3.5.1).
    (void)hash_.Hash32(ip->dst);
  }

  auto cached = cache_.Lookup(ip->dst, routes_.epoch());
  if (!cached) {
    out.target = ClassifyOutcome::Target::kStrongArmLocal;
    out.reason = "route-miss";
    return out;
  }
  out.target = ClassifyOutcome::Target::kPort;
  out.out_port = cached->out_port;
  out.route = *cached;
  out.route_found = true;
  return out;
}

int Classifier::SlowPathResolve(uint32_t dst_ip, RouteEntry* out) {
  auto result = routes_.Lookup(dst_ip);
  if (!result.entry) {
    return result.memory_accesses;
  }
  cache_.Insert(dst_ip, *result.entry, routes_.epoch());
  *out = *result.entry;
  return result.memory_accesses;
}

}  // namespace npr
