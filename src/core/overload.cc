#include "src/core/overload.h"

#include <algorithm>

#include "src/net/ipv4.h"
#include "src/obs/observer.h"

namespace npr {
namespace {

const std::set<uint32_t> kNoHotSources;

// Source IP from the frame's IP header (host order); 0 when the frame is
// too short to carry one (such frames are dropped by validation later — the
// governor just needs a stable policing key).
uint32_t SrcIpOf(const Packet& packet) {
  const auto l3 = packet.l3();
  if (l3.size() < kIpv4MinHeaderBytes) {
    return 0;
  }
  return static_cast<uint32_t>(l3[12]) << 24 | static_cast<uint32_t>(l3[13]) << 16 |
         static_cast<uint32_t>(l3[14]) << 8 | static_cast<uint32_t>(l3[15]);
}

bool IsControlFrame(const Packet& packet) {
  const auto l3 = packet.l3();
  return l3.size() >= kIpv4MinHeaderBytes && l3[9] == kIpProtoOspfLite;
}

}  // namespace

OverloadGovernor::OverloadGovernor(Router& router, OverloadConfig config)
    : router_(router), cfg_(config), rng_(config.seed) {
  router_.SetGovernor(this);
  router_.engine().ScheduleIn(cfg_.tick_ps, [this] { Tick(); });
}

OverloadGovernor::~OverloadGovernor() { router_.SetGovernor(nullptr); }

const std::set<uint32_t>& OverloadGovernor::hot_sources(uint8_t port) const {
  auto it = hot_.find(port);
  return it == hot_.end() ? kNoHotSources : it->second;
}

RxVerdict OverloadGovernor::AdmitFrame(uint8_t port, const Packet& packet,
                                       size_t rx_backlog_mps) {
  // Control carve-out first: OSPF-lite frames ride ahead of data and are
  // never shed, at any ladder stage.
  if (IsControlFrame(packet)) {
    ++control_admitted_;
    return RxVerdict::kAcceptPriority;
  }
  if (stage_ == 0) {
    return RxVerdict::kAccept;
  }

  const uint32_t src = SrcIpOf(packet);
  // Offered-load accounting feeds next tick's heavy-hitter set; counting
  // from stage 1 gives stage 2 a full tick of history on arrival.
  offered_by_src_[port][src] += 1;

  if (stage_ >= 4) {
    router_.stats().gov_quenched += 1;
    quench_by_src_[src] += 1;
    return RxVerdict::kDropQuench;
  }

  if (stage_ >= 2) {
    auto hot = hot_.find(port);
    if (hot != hot_.end() && hot->second.count(src) != 0 &&
        rng_.Chance(cfg_.hh_drop_p)) {
      router_.stats().gov_policed += 1;
      return RxVerdict::kDropPolice;
    }
  }

  // Stage 1+: RED on the port's receive backlog.
  const double capacity =
      static_cast<double>(router_.port(port).rx_buffer_capacity_mps());
  const double fill = capacity > 0 ? static_cast<double>(rx_backlog_mps) / capacity : 0.0;
  double p = 0.0;
  if (fill >= cfg_.red_max_fill) {
    p = cfg_.red_max_p;
  } else if (fill > cfg_.red_min_fill) {
    p = cfg_.red_max_p * (fill - cfg_.red_min_fill) /
        (cfg_.red_max_fill - cfg_.red_min_fill);
  }
  if (p > 0 && rng_.Chance(p)) {
    router_.stats().gov_red_dropped += 1;
    return RxVerdict::kDropRed;
  }
  return RxVerdict::kAccept;
}

double OverloadGovernor::Pressure() {
  double pressure = 0.0;
  for (int p = 0; p < router_.num_ports(); ++p) {
    const MacPort& port = router_.port(p);
    const double capacity = static_cast<double>(port.rx_buffer_capacity_mps());
    if (capacity > 0) {
      pressure = std::max(pressure, static_cast<double>(port.rx_backlog_mps()) / capacity);
    }
  }
  const PacketQueue* hosts[] = {&router_.sa_pentium_queue(), &router_.sa_local_queue()};
  for (const PacketQueue* q : hosts) {
    if (q->capacity() > 0) {
      pressure = std::max(pressure, static_cast<double>(q->size()) /
                                        static_cast<double>(q->capacity()));
    }
  }
  return pressure;
}

void OverloadGovernor::Tick() {
  RebuildHotSets();
  const double pressure = Pressure();

  if (stage_ < 4 && pressure >= cfg_.enter_fill[stage_ + 1]) {
    ++escalate_ticks_;
  } else {
    escalate_ticks_ = 0;
  }
  if (stage_ > 0 && pressure < cfg_.exit_fill[stage_]) {
    ++deescalate_ticks_;
  } else {
    deescalate_ticks_ = 0;
  }

  if (escalate_ticks_ >= cfg_.escalate_dwell_ticks) {
    escalate_ticks_ = 0;
    SetStage(stage_ + 1);
  } else if (deescalate_ticks_ >= cfg_.deescalate_dwell_ticks) {
    deescalate_ticks_ = 0;
    SetStage(stage_ - 1);
  }

  router_.engine().ScheduleIn(cfg_.tick_ps, [this] { Tick(); });
}

void OverloadGovernor::SetStage(int next) {
  if (next == stage_) {
    return;
  }
  const bool was_shedding_host = ShedHostBound();
  if (next > stage_) {
    ++escalations_;
    router_.stats().gov_escalations += 1;
    if (stage_ == 0) {
      overload_since_ps_ = router_.engine().now();
    }
  }
  stage_ = next;
  NPR_OBS_HOOK(router_.observer(),
               Record(SpanPoint::kGovStage, 0, kUnitGovernor,
                      static_cast<uint16_t>(stage_)));
  if (!was_shedding_host && ShedHostBound()) {
    ThrottleExtensions();
  } else if (was_shedding_host && !ShedHostBound()) {
    LiftThrottles();
  }
}

void OverloadGovernor::RebuildHotSets() {
  hot_.clear();
  for (const auto& [port, by_src] : offered_by_src_) {
    uint64_t total = 0;
    for (const auto& [src, n] : by_src) {
      total += n;
    }
    const uint64_t threshold =
        std::max<uint64_t>(cfg_.hh_min_frames,
                           static_cast<uint64_t>(cfg_.hh_share * static_cast<double>(total)));
    for (const auto& [src, n] : by_src) {
      if (n >= threshold) {
        hot_[port].insert(src);
      }
    }
  }
  offered_by_src_.clear();
}

void OverloadGovernor::ThrottleExtensions() {
  // Every active general extension in the chain is throttled (packets take
  // the default IP transform); only handles this governor set are tracked,
  // so a pre-existing quarantine throttle is left alone and never lifted
  // from here.
  for (const auto& entry : router_.istore().GeneralChain()) {
    if (!router_.istore().IsThrottled(entry.id)) {
      router_.istore().SetThrottled(entry.id, true);
      throttled_by_gov_.insert(entry.id);
    }
  }
}

void OverloadGovernor::LiftThrottles() {
  for (uint32_t id : throttled_by_gov_) {
    // The program may have been evicted (health quarantine) while throttled;
    // lifting an unknown handle would be a logged error.
    if (router_.istore().Get(id) != nullptr) {
      router_.istore().SetThrottled(id, false);
    }
  }
  throttled_by_gov_.clear();
}

}  // namespace npr
