// The router facade: assembles the simulated hardware, the fixed
// infrastructure (Sections 2-3), and the extensibility machinery
// (Section 4), and exposes the paper's install/remove/getdata/setdata
// interface plus experiment plumbing.

#ifndef SRC_CORE_ROUTER_H_
#define SRC_CORE_ROUTER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/admission.h"
#include "src/core/classifier.h"
#include "src/core/input_stage.h"
#include "src/core/mem_map.h"
#include "src/core/output_stage.h"
#include "src/core/pentium_host.h"
#include "src/core/router_config.h"
#include "src/core/router_core.h"
#include "src/core/strongarm_bridge.h"

namespace npr {

class FaultInjector;
class Observer;
class UpgradeOrchestrator;

// A request through the §4.5 interface:
//   fid = install(key, fwdr, size, where)
struct InstallRequest {
  FlowKey key;                    // 4-tuple, or FlowKey::All()
  Where where = Where::kMicroEngine;
  // where == ME: the VRP program to verify and load (copied).
  const VrpProgram* program = nullptr;
  // where == SA/PE: index into that processor's jump table (§4.5: the
  // StrongARM boots with a fixed set; install binds one of them).
  int native_index = -1;
  // Flow-state bytes; defaults to the program's .state / the native
  // forwarder's declared requirement.
  uint32_t state_bytes = 0;
  // Pentium admission parameters (§4.6).
  double expected_pps = 0;
  double expected_cpp = 0;
  // FNV-1a over the assembled image words (VrpImageChecksum), computed by
  // the sender before the request crosses the control channel. 0 skips the
  // check; any other value must match the program bytes that arrived.
  uint64_t image_checksum = 0;
};

// Why an install was refused, machine-readably (error carries the prose).
enum class InstallReject : uint8_t {
  kNone,
  kBadRequest,         // missing program / unknown jump-table index
  kChecksumMismatch,   // image bytes do not match image_checksum
  kAdmission,          // verifier or budget refusal
  kIstoreFull,         // no extension slots left
};

struct InstallOutcome {
  bool ok = false;
  InstallReject reject = InstallReject::kNone;
  std::string error;
  uint32_t fid = 0;
};

class Router {
 public:
  explicit Router(RouterConfig config);
  // Multi-node configurations (the paper's §6 "four Pentium/IXP pairs")
  // share one simulation clock: pass the common event queue.
  Router(RouterConfig config, EventQueue& shared_engine);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Starts the pipeline stages, the StrongARM, and the Pentium. Routes and
  // forwarders may be installed before or after.
  void Start();

  // --- the paper's control interface (§4.5) ---
  InstallOutcome Install(const InstallRequest& request);
  bool Remove(uint32_t fid);
  // Flow-state access for control forwarders.
  std::vector<uint8_t> GetData(uint32_t fid);
  bool SetData(uint32_t fid, std::span<const uint8_t> data);

  // --- configuration helpers ---
  bool AddRoute(const std::string& cidr, uint8_t out_port);
  // Installs the StrongARM's exception handler for IP-option packets
  // (usually a FullIpForwarder). The router takes ownership.
  void SetExceptionHandler(std::unique_ptr<NativeForwarder> handler);
  // Pre-fills the route cache for destinations 10.<port>.0.<1..spread>.
  void WarmRouteCache(int spread = 64);

  // --- simulation control ---
  void RunFor(SimTime dt) { engine_.RunFor(dt); }
  void RunForMs(double ms) { engine_.RunFor(static_cast<SimTime>(ms * kPsPerMs)); }
  // Discards warmup statistics and opens a measurement window.
  void StartMeasurement();
  // Forwarding rate in Mpps over the measurement window.
  double ForwardingRateMpps() const;

  // --- access ---
  EventQueue& engine() { return engine_; }
  const RouterConfig& config() const { return config_; }
  Ixp1200& chip() { return chip_; }
  HostSystem& host() { return host_; }
  RouterStats& stats() { return stats_; }
  RouteTable& route_table() { return route_table_; }
  RouteCache& route_cache() { return route_cache_; }
  FlowTable& flow_table() { return flow_table_; }
  IStoreLayout& istore() { return istore_; }
  VrpInterpreter& vrp() { return vrp_; }
  AdmissionControl& admission() { return admission_; }
  // The SRAM allocator (flow-state regions live here) and the bytes the
  // fixed infrastructure claimed at construction. RouterInvariants
  // reconciles outstanding() - sram_infra_bytes() against the flow table.
  Arena& sram_arena() { return sram_arena_; }
  uint32_t sram_infra_bytes() const { return sram_infra_bytes_; }
  ForwarderRegistry& sa_forwarders() { return sa_forwarders_; }
  ForwarderRegistry& pe_forwarders() { return pe_forwarders_; }
  MacPort& port(int i) { return *ports_[static_cast<size_t>(i)]; }
  int num_ports() const { return static_cast<int>(ports_.size()); }
  // Router-owned pool backing bridge-side packet materialization; the
  // per-port RX/TX pools live on the MacPorts (port(i).pool()).
  PacketPool& packet_pool() { return packet_pool_; }
  StrongArmBridge& bridge() { return *bridge_; }
  PentiumHost& pentium_host() { return *pentium_; }
  InputStage& input_stage() { return *input_; }
  OutputStage& output_stage() { return *output_; }
  QueuePlan& queues() { return *queues_; }
  CircularBufferAllocator& buffers() { return buffers_; }
  PacketQueue& sa_local_queue() { return *sa_local_queue_; }
  PacketQueue& sa_pentium_queue() { return *sa_pentium_queue_; }
  // Null unless the config carries a non-empty fault plan.
  FaultInjector* fault_injector() { return fault_.get(); }
  bool started() const { return started_; }

  // Attaches (or detaches, with nullptr) the health-monitor hook points the
  // data path consults: trap notification and degraded-mode shedding. The
  // hooks object must outlive the attachment.
  void set_health_hooks(HealthHooks* hooks) { core_.health = hooks; }

  // Attaches (or detaches, with nullptr) the observability layer: span
  // tracers on ports/queues/token rings and the cycle profiler on every
  // MicroEngine. The observer must outlive the attachment. No-op when the
  // build carries NPR_OBS=OFF (the hook sites compile away).
  void SetObserver(Observer* obs);
  Observer* observer() { return core_.obs; }

  // Attaches (or detaches, with nullptr) the overload governor: RX
  // admission hooks on every MacPort plus the bridge's host-bound shedding
  // policy. The governor must outlive the attachment; null (the default)
  // admits everything.
  void SetGovernor(OverloadGovernor* governor);
  OverloadGovernor* governor() { return core_.governor; }

  // Attaches (or detaches, with nullptr) the in-service upgrade
  // orchestrator: the input stage hands it every VRP run on the upgraded
  // handle for shadow comparison. The orchestrator must outlive the
  // attachment; normally set by UpgradeOrchestrator's own constructor.
  void SetUpgrade(UpgradeOrchestrator* upgrade) { core_.upgrade = upgrade; }
  UpgradeOrchestrator* upgrade() { return core_.upgrade; }

 private:
  RouterConfig config_;
  std::unique_ptr<EventQueue> owned_engine_;  // null when the engine is shared
  EventQueue& engine_;
  Ixp1200 chip_;
  HostSystem host_;
  RouterStats stats_;

  Arena sram_arena_;
  Arena scratch_arena_;
  uint32_t sram_infra_bytes_ = 0;  // arena watermark at end of construction
  CircularBufferAllocator buffers_;
  std::unique_ptr<StackBufferPool> stack_pool_;

  RouteTable route_table_;
  RouteCache route_cache_;
  FlowTable flow_table_;
  IStoreLayout istore_;
  VrpInterpreter vrp_;
  ForwarderRegistry sa_forwarders_;
  ForwarderRegistry pe_forwarders_;
  AdmissionControl admission_;

  std::vector<std::unique_ptr<MacPort>> ports_;
  PacketPool packet_pool_;
  std::unique_ptr<QueuePlan> queues_;
  std::unique_ptr<PacketQueue> sa_local_queue_;
  std::unique_ptr<PacketQueue> sa_pentium_queue_;

  std::unique_ptr<FaultInjector> fault_;

  RouterCore core_;
  Classifier classifier_;
  std::unique_ptr<InputStage> input_;
  std::unique_ptr<OutputStage> output_;
  std::unique_ptr<StrongArmBridge> bridge_;
  std::unique_ptr<PentiumHost> pentium_;
  std::unique_ptr<NativeForwarder> exception_handler_;

  Router(RouterConfig config, EventQueue* shared_engine);

  void DrainOnce();

  bool started_ = false;
};

}  // namespace npr

#endif  // SRC_CORE_ROUTER_H_
