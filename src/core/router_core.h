// Shared wiring handed to the pipeline stages, the bridge, and the host by
// the Router facade. Plain pointers: the Router owns everything and
// outlives all users.

#ifndef SRC_CORE_ROUTER_CORE_H_
#define SRC_CORE_ROUTER_CORE_H_

#include <vector>

#include "src/core/buffer_allocator.h"
#include "src/core/flow_table.h"
#include "src/core/forwarder.h"
#include "src/core/health_hooks.h"
#include "src/core/packet_queue.h"
#include "src/core/queue_plan.h"
#include "src/core/router_config.h"
#include "src/core/router_stats.h"
#include "src/ixp/ixp1200.h"
#include "src/net/mac_port.h"
#include "src/route/route_cache.h"
#include "src/route/route_table.h"
#include "src/vrp/interpreter.h"
#include "src/vrp/istore_layout.h"

namespace npr {

class StrongArmBridge;
class PentiumHost;
class FaultInjector;
class Observer;
class OverloadGovernor;
class UpgradeOrchestrator;

struct RouterCore {
  // Returns the packet's sidecar metadata regardless of allocator flavor,
  // and releases a buffer when the stack pool (§3.2.3 ablation) owns it.
  // Declared below the struct; see inline definitions at the bottom.

  const RouterConfig* config = nullptr;
  EventQueue* engine = nullptr;
  Ixp1200* chip = nullptr;
  HostSystem* host = nullptr;

  CircularBufferAllocator* buffers = nullptr;
  // Non-null when RouterConfig::use_stack_buffer_pool is set.
  StackBufferPool* stack_pool = nullptr;
  QueuePlan* queues = nullptr;
  RouteTable* route_table = nullptr;
  RouteCache* route_cache = nullptr;
  FlowTable* flow_table = nullptr;
  IStoreLayout* istore = nullptr;
  VrpInterpreter* vrp = nullptr;

  // Exception path: packets for StrongARM-local service and packets bound
  // for the Pentium (§3.6, §4.5).
  PacketQueue* sa_local_queue = nullptr;
  PacketQueue* sa_pentium_queue = nullptr;

  ForwarderRegistry* sa_forwarders = nullptr;
  ForwarderRegistry* pe_forwarders = nullptr;
  // Handles exceptional packets carrying IP options on the StrongARM
  // (typically the full-IP forwarder). Optional; without it the bridge
  // forwards option packets with the minimal transform.
  NativeForwarder* sa_exception_handler = nullptr;

  std::vector<MacPort*> ports;
  RouterStats* stats = nullptr;

  // Router-owned frame-buffer pool for control-plane packet materialization
  // (the StrongARM bridge pulling frames out of DRAM). Data-path RX/TX
  // frames live in the per-MacPort pools instead.
  PacketPool* pool = nullptr;

  StrongArmBridge* bridge = nullptr;
  PentiumHost* pentium = nullptr;

  // Non-null when the config carries a fault plan; stage loops poll it for
  // context crashes.
  FaultInjector* fault = nullptr;

  // Non-null when an Observer is attached (Router::SetObserver); stage
  // loops emit span records through it. Compile-time gated: with
  // NPR_OBS_ENABLED undefined the hook sites vanish entirely.
  Observer* obs = nullptr;

  // Non-null when a HealthMonitor is attached (Router::set_health_hooks);
  // the data path notifies it of traps and queries degraded-mode policy.
  HealthHooks* health = nullptr;

  // Non-null when an OverloadGovernor is attached (Router::SetGovernor);
  // the bridge polls it for host-bound shedding policy (the MacPorts hold
  // their own RxGovernorHooks pointer to the same object).
  OverloadGovernor* governor = nullptr;

  // Non-null when an UpgradeOrchestrator is attached (Router::SetUpgrade);
  // the input stage hands it pristine/post-run MP views around every VRP
  // run so the shadow comparator sees exactly what the active image saw.
  UpgradeOrchestrator* upgrade = nullptr;
};

// Sidecar metadata for a buffer under either allocator.
inline const BufferMeta& BufferMetaFor(const RouterCore& core, uint32_t addr) {
  return core.stack_pool != nullptr ? core.stack_pool->MetaFor(addr)
                                    : core.buffers->MetaFor(addr);
}

// Releases a buffer if the stack pool owns allocation (no-op for the
// circular ring, whose buffers expire by being lapped).
inline void ReleaseBuffer(RouterCore& core, uint32_t addr) {
  if (core.stack_pool != nullptr) {
    core.stack_pool->Free(addr);
  }
}

}  // namespace npr

#endif  // SRC_CORE_ROUTER_CORE_H_
