#include "src/core/strongarm_bridge.h"

#include <algorithm>

#include "src/core/overload.h"
#include "src/core/pentium_host.h"
#include "src/net/icmp.h"
#include "src/net/ipv4.h"
#include "src/obs/observer.h"
#include "src/sim/log.h"

namespace npr {
namespace {

constexpr size_t kHostBuffers = 64;

// Pulls the frame out of DRAM into a pooled buffer (heap fallback when the
// pool is absent or capped out) — no per-packet vector churn.
Packet MaterializePacket(MemorySystem& mem, PacketPool* pool, const PacketDescriptor& desc) {
  const uint32_t n = desc.frame_bytes;
  FrameBuf* buf = pool != nullptr ? pool->TryAcquire(n) : nullptr;
  if (buf == nullptr) {
    buf = PacketPool::AcquireHeap(n);
  }
  mem.dram_store().Read(desc.buffer_addr, std::span<uint8_t>(buf->data(), n));
  return Packet::Adopt(buf);
}

// True when the buffered frame is OSPF-lite (IP proto 89): the governor's
// control carve-out extends to the bridge, so host-bound shedding under
// overload never eats a control frame. (Health shedding is different — it
// means the Pentium is dead, and nothing can process the frame anyway.)
bool IsControlBuffer(MemorySystem& mem, const PacketDescriptor& desc) {
  if (desc.frame_bytes < kEthHeaderBytes + kIpv4MinHeaderBytes) {
    return false;
  }
  uint8_t proto[1] = {0};
  mem.dram_store().Read(static_cast<uint32_t>(desc.buffer_addr + kEthHeaderBytes + 9), proto);
  return proto[0] == kIpProtoOspfLite;
}

}  // namespace

void NotifyBridge(StrongArmBridge& bridge) { bridge.Notify(); }

StrongArmBridge::StrongArmBridge(RouterCore& core, Classifier& classifier)
    : core_(core),
      classifier_(classifier),
      to_pentium_(kHostBuffers, kHostBuffers),
      from_pentium_(kHostBuffers, kHostBuffers) {
  // Pre-fill the free lists with host buffer pointers (§3.7: one queue of
  // pointers to empty buffers in Pentium memory per direction).
  for (size_t i = 0; i < kHostBuffers; ++i) {
    to_pentium_.free_q.Push(next_host_buffer_++);
    from_pentium_.free_q.Push(next_host_buffer_++);
  }
}

void StrongArmBridge::Start() { core_.chip->strongarm().Install(SaLoop()); }

void StrongArmBridge::Notify() {
  if (core_.config->sa_use_interrupts || feed_mode_) {
    core_.chip->strongarm().Wake();
  }
  // Polling mode: the StrongARM discovers work on its next poll.
}

void StrongArmBridge::EnableFeedMode(size_t frame_bytes, bool move_full_frame) {
  feed_mode_ = true;
  feed_frame_bytes_ = frame_bytes;
  feed_move_full_ = move_full_frame;
}

Task StrongArmBridge::SaLoop() {
  SoftCore& sa = core_.chip->strongarm();
  const HwConfig& hw = core_.config->hw;
  MemorySystem& mem = core_.chip->memory();

  for (;;) {
    bool did_work = false;

    // --- 0. Degraded mode: the health monitor declared the Pentium
    // unresponsive (or the overload governor reached stage 3), so
    // Pentium-bound packets are shed here instead of piling into the
    // bounded host queues (path A keeps its token-ring cadence; path B
    // resumes when the watchdog clears / the ladder descends). Health and
    // governor sheds are attributed separately.
    const bool health_shed = core_.health != nullptr && core_.health->ShedPentiumBound();
    bool gov_shed = core_.governor != nullptr && core_.governor->ShedHostBound();
    if (gov_shed && !health_shed && core_.sa_pentium_queue != nullptr) {
      // Governor-only shedding honors the control carve-out: a control frame
      // at the head of the line rides the normal bridge path below.
      const auto head = core_.sa_pentium_queue->PeekTail();
      if (head && IsControlBuffer(mem, *head)) {
        gov_shed = false;
      }
    }
    if ((health_shed || gov_shed) && core_.sa_pentium_queue != nullptr &&
        !core_.sa_pentium_queue->empty()) {
      co_await sa.Compute(hw.sa_dequeue_cycles);
      co_await sa.Read(mem.scratch(), 4);
      co_await sa.Read(mem.sram(), 4);
      auto desc = core_.sa_pentium_queue->Pop();
      if (desc) {
        if (health_shed) {
          core_.stats->pkts_shed_degraded += 1;
          NPR_OBS_HOOK(core_.obs, Record(SpanPoint::kSaShedPe,
                                         BufferMetaFor(core_, desc->buffer_addr).packet_id,
                                         kUnitStrongArm, desc->out_port));
        } else {
          core_.stats->gov_shed_pe += 1;
          NPR_OBS_HOOK(core_.obs, Record(SpanPoint::kSaShedGov,
                                         BufferMetaFor(core_, desc->buffer_addr).packet_id,
                                         kUnitStrongArm, desc->out_port));
        }
        ReleaseBuffer(core_, desc->buffer_addr);
      }
      did_work = true;
    } else if (core_.governor != nullptr && core_.governor->ShedSaLocal() &&
               core_.sa_local_queue != nullptr && !core_.sa_local_queue->empty()) {
      co_await sa.Compute(hw.sa_dequeue_cycles);
      co_await sa.Read(mem.scratch(), 4);
      co_await sa.Read(mem.sram(), 4);
      auto desc = core_.sa_local_queue->Pop();
      if (desc) {
        core_.stats->gov_shed_sa += 1;
        NPR_OBS_HOOK(core_.obs, Record(SpanPoint::kSaShedGov,
                                       BufferMetaFor(core_, desc->buffer_addr).packet_id,
                                       kUnitStrongArm, desc->out_port));
        ReleaseBuffer(core_, desc->buffer_addr);
      }
      did_work = true;
    }

    // --- 1. Pentium-bound packets ---
    // Default policy (the paper's prototype): strict precedence over local
    // work. With sa_proportional_share, a stride scheduler splits the
    // StrongARM between the two queues by their configured shares (§4.1's
    // stated plan).
    bool take_pentium = true;
    if (core_.config->sa_proportional_share && core_.sa_local_queue != nullptr &&
        !core_.sa_local_queue->empty()) {
      take_pentium = pentium_pass_ <= local_pass_;
    }
    const bool pentium_ready = core_.config->enable_pentium && !to_pentium_.free_q.empty();
    if (!did_work && take_pentium && pentium_ready && core_.sa_pentium_queue != nullptr &&
        !core_.sa_pentium_queue->empty()) {
      co_await sa.Compute(hw.sa_dequeue_cycles);
      co_await sa.Read(mem.scratch(), 4);
      co_await sa.Read(mem.sram(), 4);
      auto desc = core_.sa_pentium_queue->Pop();
      if (desc) {
        const uint32_t extra_mps = desc->mp_count > 0 ? desc->mp_count - 1u : 0u;
        co_await sa.Compute(hw.sa_bridge_fixed_cycles +
                            hw.sa_bridge_per_extra_mp_cycles * extra_mps);
        const uint32_t ptr = *to_pentium_.free_q.Pop();
        // Only the first 64 bytes plus the 8-byte internal routing header
        // cross PCI eagerly; the body is fetched lazily by the Pentium if
        // its forwarder needs it (§3.7).
        const uint32_t bytes =
            std::min<uint32_t>(desc->frame_bytes, 64) + hw.pci_routing_header_bytes;
        HostPacket hp{*desc, bytes};
        // The DMA engine runs concurrently with the StrongARM: post the
        // transfer; completion publishes the pointer and rings the doorbell.
        StrongArmBridge* self = this;
        core_.host->pci().Issue(bytes, /*is_write=*/true, [self, ptr, hp] {
          self->staging_[ptr] = hp;
          self->to_pentium_.full_q.Push(ptr);
          if (self->core_.pentium != nullptr) {
            NotifyPentium(*self->core_.pentium);
          }
        });
        ++bridged_to_pentium_;
        NPR_OBS_HOOK(core_.obs,
                     Record(SpanPoint::kBridgeToPe, BufferMetaFor(core_, desc->buffer_addr).packet_id,
                            kUnitStrongArm, desc->out_port));
        if (core_.config->sa_proportional_share) {
          pentium_pass_ += 1.0 / core_.config->sa_pentium_share;
        }
        did_work = true;
      }
    }

    // --- 2. Pentium returns: re-enter the output queues ---
    if (!did_work && !from_pentium_.full_q.empty()) {
      co_await sa.Compute(hw.sa_enqueue_cycles);
      const uint32_t ptr = *from_pentium_.full_q.Pop();
      auto it = staging_.find(ptr);
      if (it != staging_.end()) {
        const HostPacket hp = it->second;
        staging_.erase(it);
        from_pentium_.free_q.Push(ptr);
        NPR_OBS_HOOK(core_.obs,
                     Record(SpanPoint::kPeReturned, BufferMetaFor(core_, hp.desc.buffer_addr).packet_id,
                            kUnitStrongArm, hp.desc.out_port));
        if (feed_mode_) {
          ++feed_roundtrips_;
        } else {
          co_await sa.Write(mem.sram(), 4);
          sa.PostBurst(mem.scratch(), 2, 4);
          PacketQueue& q = core_.queues->QueueFor(0, hp.desc.out_port, 0);
          if (q.Push(hp.desc)) {
            core_.queues->MarkReady(q);
            NPR_OBS_HOOK(core_.obs, Record(SpanPoint::kSaReturnEnqueued,
                                           BufferMetaFor(core_, hp.desc.buffer_addr).packet_id,
                                           kUnitStrongArm, hp.desc.out_port));
          } else {
            core_.stats->dropped_queue_full += 1;
            NPR_OBS_HOOK(core_.obs, Record(SpanPoint::kDropQueueFull,
                                           BufferMetaFor(core_, hp.desc.buffer_addr).packet_id,
                                           kUnitStrongArm, hp.desc.out_port));
            ReleaseBuffer(core_, hp.desc.buffer_addr);
          }
        }
        ++returned_;
      }
      did_work = true;
    }

    // --- feed mode (Table 4): synthesize Pentium traffic at max rate ---
    if (!did_work && feed_mode_ && !to_pentium_.free_q.empty()) {
      BufferMeta meta;
      meta.packet_id = static_cast<uint32_t>(bridged_to_pentium_ + 1);
      meta.ingress_time = core_.engine->now();
      PacketDescriptor desc;
      desc.buffer_addr = core_.buffers->Allocate(meta);
      desc.frame_bytes = static_cast<uint16_t>(feed_frame_bytes_);
      desc.mp_count = static_cast<uint16_t>((feed_frame_bytes_ + 63) / 64);
      const uint32_t extra_mps = desc.mp_count - 1u;
      co_await sa.Compute(hw.sa_bridge_fixed_cycles +
                          hw.sa_bridge_per_extra_mp_cycles * extra_mps);
      const uint32_t ptr = *to_pentium_.free_q.Pop();
      const uint32_t bytes =
          (feed_move_full_ ? desc.frame_bytes : std::min<uint32_t>(desc.frame_bytes, 64)) +
          hw.pci_routing_header_bytes;
      HostPacket hp{desc, bytes};
      StrongArmBridge* self = this;
      core_.host->pci().Issue(bytes, /*is_write=*/true, [self, ptr, hp] {
        self->staging_[ptr] = hp;
        self->to_pentium_.full_q.Push(ptr);
        if (self->core_.pentium != nullptr) {
          NotifyPentium(*self->core_.pentium);
        }
      });
      ++bridged_to_pentium_;
      did_work = true;
    }

    // --- 3. Local forwarders (route misses, IP options, SA flows) ---
    if (!did_work && core_.sa_local_queue != nullptr && !core_.sa_local_queue->empty()) {
      if (core_.config->sa_use_interrupts) {
        // Interrupt mode (§3.6, the losing design): every packet delivery
        // raises an interrupt whose dispatch must be paid even under load.
        co_await sa.Compute(hw.sa_interrupt_overhead_cycles);
      }
      co_await sa.Compute(hw.sa_dequeue_cycles);
      co_await sa.Read(mem.scratch(), 4);
      co_await sa.Read(mem.sram(), 4);
      auto desc = core_.sa_local_queue->Pop();
      const bool still_valid =
          desc && (core_.stack_pool != nullptr ||
                   core_.buffers->StillValid(desc->buffer_addr, desc->generation));
      if (still_valid) {
        NPR_OBS_HOOK(core_.obs,
                     Record(SpanPoint::kSaDequeued, BufferMetaFor(core_, desc->buffer_addr).packet_id,
                            kUnitStrongArm, desc->out_port));
        // Pull the header MP into the StrongARM (it accesses DRAM
        // directly, §3.6).
        co_await sa.Read(mem.dram(), 32);
        co_await sa.Read(mem.dram(), 32);
        Packet packet = MaterializePacket(mem, core_.pool, *desc);
        pooled_live_ += packet.pooled() ? 1 : 0;

        bool forward = true;
        uint8_t out_port = desc->out_port;
        uint8_t icmp_type = 255;  // 255 = no error to generate
        uint8_t icmp_code = 0;

        // Per-flow SA forwarder, or the SA general chain.
        const FlowMeta* flow =
            desc->flow_handle != 0 ? core_.flow_table->Get(desc->flow_handle) : nullptr;
        std::vector<const FlowMeta*> to_run;
        if (flow != nullptr && flow->where == Where::kStrongArm) {
          to_run.push_back(flow);
        } else {
          to_run = core_.flow_table->Generals(Where::kStrongArm);
        }

        // Route resolution: cache first, full CPE walk on a miss (the walk
        // is exactly what exceeds the VRP budget, §4.4).
        auto ip = Ipv4Header::Parse(packet.l3());
        bool addressed_to_router = false;
        if (ip && ip->dst == core_.config->router_ip) {
          // For-us traffic: answer pings, absorb the rest.
          addressed_to_router = true;
          forward = false;
          if (auto echo = BuildEchoReply(packet)) {
            co_await sa.Compute(300);  // echo turnaround
            pooled_live_ -= packet.pooled() ? 1 : 0;
            packet = std::move(*echo);
            pooled_live_ += packet.pooled() ? 1 : 0;
            ip = Ipv4Header::Parse(packet.l3());
            auto back = core_.route_table->Lookup(ip->dst);
            for (int i = 0; i < back.memory_accesses; ++i) {
              co_await sa.Read(mem.sram(), 4);
            }
            if (back.entry) {
              out_port = back.entry->out_port;
              EthernetHeader reth = *EthernetHeader::Parse(packet.bytes());
              reth.src = PortMac(out_port);
              reth.dst = back.entry->next_hop_mac;
              reth.Write(packet.bytes());
              forward = true;
              core_.stats->icmp_generated += 1;
            }
          }
        }
        if (addressed_to_router) {
          // handled above
        } else if (!ip) {
          forward = false;
        } else if (ip->has_options() && core_.sa_exception_handler != nullptr) {
          // Full IP handles option packets end to end (route, options, TTL,
          // checksum, MACs) at its declared ~660 cycles (§4.4).
          NativeForwarder* full_ip = core_.sa_exception_handler;
          NativeContext nc;
          nc.packet = &packet;
          nc.sram = &mem.sram_store();
          nc.routes = core_.route_table;
          nc.now = core_.engine->now();
          nc.out_port = out_port;
          const NativeAction action = full_ip->Process(nc);
          co_await sa.Compute(full_ip->cycles_per_packet() + nc.extra_cycles);
          out_port = nc.out_port;
          forward = action == NativeAction::kForward;
        } else if (ip->ttl <= 1) {
          forward = false;
          icmp_type = kIcmpTimeExceeded;
          icmp_code = kIcmpCodeTtlExceeded;
        } else {
          RouteEntry entry;
          auto cached = core_.route_cache->Lookup(ip->dst, core_.route_table->epoch());
          if (cached) {
            co_await sa.Compute(10);
            entry = *cached;
          } else {
            RouteEntry resolved;
            const int accesses = classifier_.SlowPathResolve(ip->dst, &resolved);
            for (int i = 0; i < accesses; ++i) {
              co_await sa.Compute(56);  // per-level CPE processing
              co_await sa.Read(mem.sram(), 4);
            }
            auto again = core_.route_cache->Lookup(ip->dst, core_.route_table->epoch());
            if (!again) {
              forward = false;  // genuinely unroutable
              icmp_type = kIcmpDestUnreachable;
              icmp_code = kIcmpCodeHostUnreachable;
            } else {
              entry = *again;
            }
          }
          if (forward) {
            out_port = entry.out_port;
            // Minimal IP transform (full-IP / option handling is a
            // registered native forwarder and runs below).
            if (DecrementTtlInPlace(packet.l3())) {
              EthernetHeader eth = *EthernetHeader::Parse(packet.bytes());
              eth.src = PortMac(out_port);
              eth.dst = entry.next_hop_mac;
              eth.Write(packet.bytes());
            } else {
              forward = false;
            }
          }
        }

        for (const FlowMeta* f : to_run) {
          if (!forward) {
            break;
          }
          NativeForwarder* fw = core_.sa_forwarders->Get(f->native_index);
          if (fw == nullptr) {
            continue;
          }
          NativeContext nc;
          nc.packet = &packet;
          nc.sram = &mem.sram_store();
          nc.state_addr = f->state_addr;
          nc.state_bytes = f->state_bytes;
          nc.routes = core_.route_table;
          nc.now = core_.engine->now();
          nc.out_port = out_port;
          const NativeAction action = fw->Process(nc);
          co_await sa.Compute(fw->cycles_per_packet() + nc.extra_cycles);
          out_port = nc.out_port;
          if (action != NativeAction::kForward) {
            forward = false;
          }
        }

        if (forward) {
          // Write the modified header back and enqueue toward the output
          // stage like any other packet.
          mem.dram_store().Write(desc->buffer_addr, packet.bytes());
          sa.PostBurst(mem.dram(), 2, 32);
          co_await sa.Compute(hw.sa_enqueue_cycles);
          co_await sa.Write(mem.sram(), 4);
          sa.PostBurst(mem.scratch(), 2, 4);
          PacketDescriptor out = *desc;
          out.out_port = out_port;
          out.exceptional = false;
          PacketQueue& q = core_.queues->QueueFor(0, out_port, 0);
          if (q.Push(out)) {
            core_.queues->MarkReady(q);
            NPR_OBS_HOOK(core_.obs,
                         Record(SpanPoint::kSaForwarded,
                                BufferMetaFor(core_, out.buffer_addr).packet_id, kUnitStrongArm,
                                out_port));
          } else {
            core_.stats->dropped_queue_full += 1;
            NPR_OBS_HOOK(core_.obs,
                         Record(SpanPoint::kDropQueueFull,
                                BufferMetaFor(core_, out.buffer_addr).packet_id, kUnitStrongArm,
                                out_port));
            ReleaseBuffer(core_, out.buffer_addr);
          }
        }
        // Originate the ICMP error for failed packets (RFC 792), routed
        // back toward the offender's source like any other packet.
        if (!forward && icmp_type != 255 && core_.config->generate_icmp_errors) {
          auto reply = BuildIcmpError(icmp_type, icmp_code, packet, core_.config->router_ip);
          if (reply) {
            auto reply_ip = Ipv4Header::Parse(reply->l3());
            auto back = core_.route_table->Lookup(reply_ip->dst);
            co_await sa.Compute(250);  // ICMP construction
            for (int i = 0; i < back.memory_accesses; ++i) {
              co_await sa.Read(mem.sram(), 4);
            }
            if (back.entry) {
              EthernetHeader reth = *EthernetHeader::Parse(reply->bytes());
              reth.src = PortMac(back.entry->out_port);
              reth.dst = back.entry->next_hop_mac;
              reth.Write(reply->bytes());

              BufferMeta bmeta;
              bmeta.packet_id = reply->id();
              bmeta.ingress_time = core_.engine->now();
              uint32_t buf = 0;
              bool have_buf = true;
              if (core_.stack_pool != nullptr) {
                auto a = core_.stack_pool->Allocate(bmeta);
                have_buf = a.has_value();
                if (have_buf) {
                  buf = *a;
                }
              } else {
                buf = core_.buffers->Allocate(bmeta);
              }
              if (have_buf) {
                mem.dram_store().Write(buf, reply->bytes());
                sa.PostBurst(mem.dram(), 2, 32);
                PacketDescriptor icmp_desc;
                icmp_desc.buffer_addr = buf;
                icmp_desc.frame_bytes = static_cast<uint16_t>(reply->size());
                icmp_desc.mp_count = static_cast<uint16_t>(reply->mp_count());
                icmp_desc.out_port = back.entry->out_port;
                icmp_desc.generation =
                    core_.stack_pool != nullptr ? 0 : core_.buffers->MetaFor(buf).generation;
                co_await sa.Write(mem.sram(), 4);
                PacketQueue& iq = core_.queues->QueueFor(0, icmp_desc.out_port, 0);
                if (iq.Push(icmp_desc)) {
                  core_.queues->MarkReady(iq);
                  core_.stats->icmp_generated += 1;
                  core_.stats->icmp_originated += 1;
                  NPR_OBS_HOOK(core_.obs, Record(SpanPoint::kIcmpOriginated, reply->id(),
                                                 kUnitStrongArm, icmp_desc.out_port));
                } else {
                  ReleaseBuffer(core_, buf);
                }
              }
            }
          }
        }
        if (!forward) {
          core_.stats->sa_absorbed += 1;
          NPR_OBS_HOOK(core_.obs,
                       Record(SpanPoint::kSaAbsorbed,
                              BufferMetaFor(core_, desc->buffer_addr).packet_id, kUnitStrongArm,
                              desc->out_port));
          ReleaseBuffer(core_, desc->buffer_addr);
        }
        ++local_processed_;
        core_.stats->sa_local_processed += 1;
        if (core_.config->sa_proportional_share) {
          local_pass_ += 1.0 / core_.config->sa_local_share;
        }
        // `packet` dies at this scope's end; settle the pool ledger now
        // (host code — no suspension between here and the destructor).
        pooled_live_ -= packet.pooled() ? 1 : 0;
      } else if (desc) {
        // The circular buffer was lapped while the descriptor sat in the
        // exception queue; the packet content is gone. The span carries the
        // *successor* packet's id (the buffer was reused), so kSaLapped is a
        // non-erasing terminal; reconciliation accounts for it separately.
        core_.stats->sa_lapped += 1;
        NPR_OBS_HOOK(core_.obs,
                     Record(SpanPoint::kSaLapped,
                            BufferMetaFor(core_, desc->buffer_addr).packet_id, kUnitStrongArm,
                            desc->out_port));
      }
      did_work = true;
    }

    if (!did_work) {
      if (feed_mode_) {
        co_await sa.Block();  // doorbell-driven loop test: no dispatch cost
      } else if (core_.config->sa_use_interrupts) {
        co_await sa.Block();
        co_await sa.Compute(hw.sa_interrupt_overhead_cycles);
      } else {
        // Polling: a Scratch head-pointer read per idle pass.
        co_await sa.Compute(hw.sa_poll_gap_cycles);
        co_await sa.Read(mem.scratch(), 4);
      }
    }
  }
}

}  // namespace npr
