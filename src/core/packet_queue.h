// Packet queues (§3.4).
//
// A queue is a contiguous circular array of 32-bit descriptors in SRAM;
// head and tail indexes live in Scratch memory. Descriptors are inserted at
// the head and removed at the tail. The functional state (descriptor words,
// head/tail) is kept in the simulated backing stores — the pointers the
// output stage follows are the real ones the input stage wrote. The *cost*
// of each access is charged by the pipeline stages against the memory
// channels.

#ifndef SRC_CORE_PACKET_QUEUE_H_
#define SRC_CORE_PACKET_QUEUE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/mem/backing_store.h"

namespace npr {

class FaultInjector;
class Observer;

// What the 32-bit queue entry encodes, plus simulator sidecar (generation
// for buffer-lap detection; ids for verification).
struct PacketDescriptor {
  uint32_t buffer_addr = 0;  // DRAM byte address, 2 KB aligned
  uint16_t mp_count = 1;
  uint8_t out_port = 0;
  bool exceptional = false;
  uint64_t generation = 0;   // sidecar: allocator generation at enqueue
  uint32_t flow_handle = 0;  // sidecar: classifier metadata handle (0 = none)
  uint16_t frame_bytes = 64; // sidecar: total frame length

  // Hardware encoding: buffer index (13 bits) | mp_count (6) | port (4) |
  // exceptional flag (1).
  uint32_t Encode(uint32_t dram_base, uint32_t buffer_bytes) const;
  static PacketDescriptor Decode(uint32_t word, uint32_t dram_base, uint32_t buffer_bytes);
};

class PacketQueue {
 public:
  // `sram_base`: byte address of the descriptor array (capacity * 4 bytes).
  // `scratch_base`: byte address of the head/tail pair (8 bytes).
  PacketQueue(BackingStore& sram, BackingStore& scratch, uint32_t sram_base,
              uint32_t scratch_base, uint32_t capacity, int id, uint32_t dram_base,
              uint32_t buffer_bytes);

  // Inserts at the head. Returns false (and counts a drop) when full.
  bool Push(const PacketDescriptor& d);

  // Removes from the tail; nullopt when empty.
  std::optional<PacketDescriptor> Pop();

  // Software view of the next descriptor Pop() would return (sidecar only:
  // no hardware reads, no fault injection, no counters). Lets a shedding
  // policy inspect the head-of-line packet before committing to drop it.
  std::optional<PacketDescriptor> PeekTail() const;

  uint32_t size() const;
  bool empty() const { return size() == 0; }
  uint32_t capacity() const { return capacity_; }
  int id() const { return id_; }

  uint64_t pushes() const { return pushes_; }
  uint64_t pops() const { return pops_; }
  uint64_t drops() const { return drops_; }
  uint64_t corrupt_drops() const { return corrupt_drops_; }
  uint32_t max_depth() const { return max_depth_; }

  // Fault injection: corrupts descriptor words as they are read back in
  // Pop(). A corrupted word that disagrees with the sidecar is counted in
  // corrupt_drops() and the entry is discarded, never followed.
  void set_fault_injector(FaultInjector* fault) { fault_ = fault; }

  // Observability: stamps push/pop/corrupt spans. Queue spans carry the
  // buffer *index* (all the 32-bit hardware word knows), not the packet id.
  void set_tracer(Observer* tracer) { tracer_ = tracer; }

  // Cross-checks every occupied ring slot's SRAM word against the sidecar.
  // Returns the number of inconsistent entries (0 on a healthy queue).
  uint32_t CheckConsistency() const;

  // Addresses, so pipeline stages charge the right channels.
  uint32_t head_scratch_addr() const { return scratch_base_; }
  uint32_t tail_scratch_addr() const { return scratch_base_ + 4; }
  uint32_t entry_sram_addr(uint32_t index) const { return sram_base_ + index * 4; }

 private:
  BackingStore& sram_;
  BackingStore& scratch_;
  const uint32_t sram_base_;
  const uint32_t scratch_base_;
  const uint32_t capacity_;
  const int id_;
  const uint32_t dram_base_;
  const uint32_t buffer_bytes_;

  // Sidecar metadata, indexed like the SRAM ring.
  std::vector<PacketDescriptor> sidecar_;

  FaultInjector* fault_ = nullptr;
  Observer* tracer_ = nullptr;

  uint64_t pushes_ = 0;
  uint64_t pops_ = 0;
  uint64_t drops_ = 0;
  uint64_t corrupt_drops_ = 0;
  uint32_t max_depth_ = 0;
};

}  // namespace npr

#endif  // SRC_CORE_PACKET_QUEUE_H_
