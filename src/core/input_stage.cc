#include "src/core/input_stage.h"

#include <algorithm>
#include <cassert>

#include "src/core/strongarm_bridge.h"
#include "src/core/upgrade.h"
#include "src/fault/fault_injector.h"
#include "src/net/traffic_gen.h"
#include "src/obs/observer.h"
#include "src/sim/log.h"

namespace npr {

namespace {
[[maybe_unused]] uint8_t ObsUnitOf(const HwContext& ctx) {
  return ContextUnit(static_cast<uint8_t>(ctx.engine().id()), static_cast<uint8_t>(ctx.index()));
}
}  // namespace

InputStage::InputStage(RouterCore& core, Classifier& classifier)
    : core_(core),
      classifier_(classifier),
      ring_(*core.engine, core.config->hw.token_pass_cycles),
      rng_(0x1a2b3c4d5e6f7788ULL) {
  const RouterConfig& cfg = *core_.config;
  assembly_.resize(static_cast<size_t>(std::max(cfg.num_ports(), 16)));

  // Pre-built synthetic frames, one per destination port, with valid
  // checksums (InfiniteFifo mode).
  templates_.reserve(static_cast<size_t>(cfg.num_ports()));
  for (int p = 0; p < cfg.num_ports(); ++p) {
    PacketSpec spec;
    spec.dst_ip = DstIpForPort(static_cast<uint8_t>(p), 1);
    spec.src_ip = SrcIpForPort(0, 1);
    spec.frame_bytes = 64;
    spec.eth_dst = PortMac(0xfe);
    templates_.push_back(BuildPacket(spec));
  }
}

void InputStage::Start() {
  const RouterConfig& cfg = *core_.config;
  const int n_ctx = cfg.input_contexts();
  const int per_me = cfg.hw.contexts_per_me;
  const int n_me = (n_ctx + per_me - 1) / per_me;
  assert(n_me <= core_.chip->num_mes());

  // Ring order interleaves MicroEngines: position r lives on ME (r % n_me),
  // so a release always signals a context on another engine, and the two
  // contexts serving the same port sit half a rotation apart (§3.2.2).
  // The non-interleaved order (all four contexts of ME0, then ME1, ...)
  // exists for the ablation bench.
  members_.clear();
  for (int r = 0; r < n_ctx; ++r) {
    const int me = cfg.token_ring_interleaved ? r % n_me : r / cfg.hw.contexts_per_me;
    const int slot = cfg.token_ring_interleaved ? r / n_me : r % cfg.hw.contexts_per_me;
    members_.push_back(&core_.chip->me(me).context(slot));
  }
  member_index_.clear();
  port_of_.clear();
  for (int r = 0; r < n_ctx; ++r) {
    member_index_.push_back(ring_.AddMember(*members_[static_cast<size_t>(r)]));
    port_of_.push_back(static_cast<uint8_t>(r % cfg.num_ports()));
  }
  for (int r = 0; r < n_ctx; ++r) {
    HwContext* ctx = members_[static_cast<size_t>(r)];
    ctx->Install(ContextLoop(*ctx, member_index_[static_cast<size_t>(r)], r,
                             port_of_[static_cast<size_t>(r)]));
  }
}

void InputStage::RestartContext(int ctx_index) {
  const int member = member_index_[static_cast<size_t>(ctx_index)];
  HwContext* ctx = members_[static_cast<size_t>(ctx_index)];
  // Idempotent: the health monitor and the scheduled restart can race; only
  // the first one reinstalls the loop (a crash marks the member down before
  // its loop co_returns, so member-up means the context is live).
  if (!ring_.member_down(member)) {
    return;
  }
  core_.stats->context_restarts += 1;
  ring_.SetMemberDown(member, false);
  ctx->Install(ContextLoop(*ctx, member, ctx_index, port_of_[static_cast<size_t>(ctx_index)]));
}

void InputStage::RecoverContext(int ctx_index) { RestartContext(ctx_index); }

bool InputStage::ContextDown(int ctx_index) const {
  return ring_.member_down(member_index_[static_cast<size_t>(ctx_index)]);
}

SimTime InputStage::ContextDownSincePs(int ctx_index) const {
  return ring_.member_down_since_ps(member_index_[static_cast<size_t>(ctx_index)]);
}

int InputStage::partial_assemblies() const {
  int n = 0;
  for (const PortAssembly& as : assembly_) {
    n += as.in_packet ? 1 : 0;
  }
  return n;
}

Mp InputStage::SynthesizeMp(int ctx_index) {
  const RouterConfig& cfg = *core_.config;
  uint8_t dst_port;
  (void)ctx_index;
  if (cfg.synthetic_single_dst) {
    dst_port = cfg.synthetic_dst_port;
  } else {
    // Claims are serialized by the token, so a global round-robin spreads
    // destinations perfectly across the output ports.
    dst_port = static_cast<uint8_t>(synthetic_seq_ % static_cast<uint64_t>(cfg.num_ports()));
  }
  const Packet& tmpl = templates_[dst_port];
  Mp mp;
  std::copy(tmpl.bytes().begin(), tmpl.bytes().end(), mp.data.begin());
  mp.tag.port = 0;
  mp.tag.sop = true;
  mp.tag.eop = true;
  mp.tag.bytes = 64;
  mp.tag.packet_id = static_cast<uint32_t>(++synthetic_seq_);
  return mp;
}

bool InputStage::ClaimNext(uint8_t port, int ctx_index, Claim* claim) {
  const RouterConfig& cfg = *core_.config;
  if (cfg.port_mode == PortMode::kInfiniteFifo) {
    claim->mp = SynthesizeMp(ctx_index);
  } else {
    MacPort* mac = core_.ports[port];
    auto mp = mac->RxClaim();
    if (!mp) {
      return false;
    }
    claim->mp = *mp;
  }

  // calculate_mp_addr: the per-port assembly state decides this MP's DRAM
  // placement; serialized by the token, so no extra locking (§3.2.3).
  PortAssembly& as = assembly_[port];
  if (claim->mp.tag.sop) {
    BufferMeta meta;
    meta.packet_id = claim->mp.tag.packet_id;
    meta.arrival_port = port;
    meta.ingress_time = core_.engine->now();
    if (core_.stack_pool != nullptr) {
      // §3.2.3 alternative: explicit lifetime, allocation can fail.
      auto addr = core_.stack_pool->Allocate(meta);
      if (!addr) {
        core_.stats->dropped_no_buffer += 1;
        NPR_OBS_HOOK(core_.obs,
                     Record(SpanPoint::kDropNoBuffer, meta.packet_id,
                            ObsUnitOf(*members_[static_cast<size_t>(ctx_index)]), port));
        as.in_packet = false;
        return false;
      }
      as.buffer_addr = *addr;
      as.generation = 0;
    } else {
      as.buffer_addr = core_.buffers->Allocate(meta);
      as.generation = core_.buffers->MetaFor(as.buffer_addr).generation;
    }
    as.next_mp = 0;
    as.in_packet = true;
    NPR_OBS_HOOK(core_.obs,
                 Record(SpanPoint::kPktIngress, claim->mp.tag.packet_id,
                        ObsUnitOf(*members_[static_cast<size_t>(ctx_index)]), port));
  }
  claim->buffer_addr = as.buffer_addr;
  claim->mp_index = as.next_mp;
  claim->mp_addr = as.buffer_addr + static_cast<uint32_t>(as.next_mp) * 64;
  claim->generation = as.generation;
  ++as.next_mp;
  if (claim->mp.tag.eop) {
    as.in_packet = false;
  }
  return true;
}

InputStage::Disposition InputStage::ClassifyFirstMp(std::span<uint8_t> mp_bytes,
                                                    uint8_t arrival_port, VrpCost* vrp_cost,
                                                    uint32_t packet_id, uint8_t obs_unit) {
  const RouterConfig& cfg = *core_.config;
#if !defined(NPR_OBS_ENABLED)
  (void)packet_id;
  (void)obs_unit;
#endif
  Disposition disp;
  ClassifyOutcome outcome = classifier_.Classify(mp_bytes);

  switch (outcome.target) {
    case ClassifyOutcome::Target::kDrop:
      core_.stats->dropped_invalid += 1;
      NPR_OBS_HOOK(core_.obs, Record(SpanPoint::kDropInvalid, packet_id, obs_unit, arrival_port));
      disp.act = Disposition::Act::kDrop;
      return disp;
    case ClassifyOutcome::Target::kStrongArmLocal:
      disp.act = Disposition::Act::kStrongArm;
      disp.flow = outcome.flow;
      return disp;
    case ClassifyOutcome::Target::kPentium:
      disp.act = Disposition::Act::kPentium;
      disp.flow = outcome.flow;
      return disp;
    case ClassifyOutcome::Target::kPort:
      break;
  }

  // Minimal IP forwarding, applied in place (§3.2: decrement TTL, update
  // checksum, rewrite MACs from the route entry).
  if (!DecrementTtlInPlace(mp_bytes.subspan(kEthHeaderBytes))) {
    disp.act = Disposition::Act::kStrongArm;  // TTL hit zero: ICMP is control work
    return disp;
  }
  EthernetHeader eth = *EthernetHeader::Parse(mp_bytes);
  eth.src = PortMac(outcome.out_port);
  eth.dst = outcome.route.next_hop_mac;
  eth.Write(mp_bytes);

  disp.act = Disposition::Act::kQueue;
  disp.out_port = outcome.out_port;
  disp.priority = 0;

  // Per-flow VRP program (at most one, §4.6), then the general chain, IP
  // last being the built-in transform above.
  if (outcome.flow != nullptr && outcome.flow->where == Where::kMicroEngine &&
      !core_.istore->IsThrottled(outcome.flow->me_program_id)) {
    const VrpProgram* program = core_.istore->Get(outcome.flow->me_program_id);
    if (program != nullptr) {
      // Upgrade shadow hooks: snapshot the pristine MP, then hand the
      // post-run view and verdict to the orchestrator's comparator.
      // Functional only — no cycles, no Rng.
      if (core_.upgrade != nullptr) {
        core_.upgrade->BeginPacket(outcome.flow->me_program_id, mp_bytes);
      }
      auto run = core_.vrp->Run(*program, mp_bytes, outcome.flow->state_addr, &cfg.budget);
      if (core_.fault != nullptr && run.action != VrpAction::kTrap &&
          core_.fault->ShouldTrapVrp()) {
        run.action = VrpAction::kTrap;
      }
      if (core_.upgrade != nullptr) {
        core_.upgrade->EndPacket(outcome.flow->me_program_id, mp_bytes, run);
      }
      vrp_cost->cycles += run.metered.cycles;
      vrp_cost->sram_reads += run.metered.sram_reads;
      vrp_cost->sram_writes += run.metered.sram_writes;
      vrp_cost->hashes += run.metered.hashes;
      if (run.queue) {
        disp.priority = std::min<uint32_t>(
            *run.queue, static_cast<uint32_t>(cfg.queues_per_port - 1));
      }
      if (run.action == VrpAction::kDrop) {
        core_.stats->dropped_by_vrp += 1;
        NPR_OBS_HOOK(core_.obs, Record(SpanPoint::kDropVrp, packet_id, obs_unit, arrival_port));
        disp.act = Disposition::Act::kDrop;
        return disp;
      }
      if (run.action == VrpAction::kExcept) {
        disp.act = Disposition::Act::kStrongArm;
        return disp;
      }
      if (run.action == VrpAction::kTrap) {
        core_.stats->vrp_traps += 1;
        NPR_OBS_HOOK(core_.obs, Record(SpanPoint::kFault, packet_id, obs_unit,
                                       static_cast<uint16_t>(FaultKind::kVrpTrap)));
        NPR_OBS_HOOK(core_.obs, TriggerDump("vrp_trap", packet_id));
        if (core_.health != nullptr) {
          core_.health->OnVrpTrap(outcome.flow->me_program_id);
        }
        disp.act = Disposition::Act::kStrongArm;
        return disp;
      }
    }
  }
  for (const auto& general : core_.istore->GeneralChain()) {
    if (core_.upgrade != nullptr) {
      core_.upgrade->BeginPacket(general.id, mp_bytes);
    }
    auto run = core_.vrp->Run(*general.program, mp_bytes, general.state_addr, &cfg.budget);
    if (core_.fault != nullptr && run.action != VrpAction::kTrap &&
        core_.fault->ShouldTrapVrp()) {
      run.action = VrpAction::kTrap;
    }
    if (core_.upgrade != nullptr) {
      core_.upgrade->EndPacket(general.id, mp_bytes, run);
    }
    vrp_cost->cycles += run.metered.cycles;
    vrp_cost->sram_reads += run.metered.sram_reads;
    vrp_cost->sram_writes += run.metered.sram_writes;
    vrp_cost->hashes += run.metered.hashes;
    if (run.action == VrpAction::kDrop) {
      core_.stats->dropped_by_vrp += 1;
      NPR_OBS_HOOK(core_.obs, Record(SpanPoint::kDropVrp, packet_id, obs_unit, arrival_port));
      disp.act = Disposition::Act::kDrop;
      return disp;
    }
    if (run.action == VrpAction::kTrap) {
      core_.stats->vrp_traps += 1;
      NPR_OBS_HOOK(core_.obs, Record(SpanPoint::kFault, packet_id, obs_unit,
                                     static_cast<uint16_t>(FaultKind::kVrpTrap)));
      NPR_OBS_HOOK(core_.obs, TriggerDump("vrp_trap", packet_id));
      if (core_.health != nullptr) {
        core_.health->OnVrpTrap(general.id);
      }
      disp.act = Disposition::Act::kStrongArm;
      return disp;
    }
  }

  // Robustness-experiment overrides (InfiniteFifo synthetic traffic).
  if (cfg.synthetic_pentium_fraction > 0 && rng_.Chance(cfg.synthetic_pentium_fraction)) {
    disp.act = Disposition::Act::kPentium;
  } else if (cfg.synthetic_exceptional_fraction > 0 &&
             rng_.Chance(cfg.synthetic_exceptional_fraction)) {
    disp.act = Disposition::Act::kStrongArm;
  }
  (void)arrival_port;
  return disp;
}

Task InputStage::ContextLoop(HwContext& ctx, int member, int ctx_index, uint8_t port) {
  const RouterConfig& cfg = *core_.config;
  const StageCosts& costs = cfg.costs;
  MemorySystem& mem = core_.chip->memory();
  StageStats& st = core_.stats->input;

  // Back-to-back Compute fusion gate. Fusing two pipeline occupancies into
  // one preserves this context's timeline exactly, but enqueues the
  // completion event earlier than the two-event shape did — which reorders
  // same-instant event ties and perturbs replay whenever another actor can
  // observe them. So fusion is confined to the isolated synthetic input
  // profile (Table 1 I rows): synthetic MPs, no output stage, no stack
  // pool, no observer, no fault plan. Everything else keeps the exact
  // event-for-event shape.
  const bool fuse_static = cfg.port_mode == PortMode::kInfiniteFifo &&
                           cfg.output_contexts() == 0 && core_.stack_pool == nullptr &&
                           !cfg.dram_direct_path;

  for (;;) {
    // Crash-safe point: no token, mutex, or claim is held here, so a crash
    // loses no packet — at worst a partial assembly waits for the port's
    // sibling context or this context's restart.
    if (core_.fault != nullptr && core_.fault->ShouldCrashContext()) {
      core_.stats->context_crashes += 1;
      NPR_OBS_HOOK(core_.obs, Record(SpanPoint::kFault, 0, ObsUnitOf(ctx),
                                     static_cast<uint16_t>(FaultKind::kContextCrash)));
      ring_.SetMemberDown(member, true);
      // A lost restart models the recovery path itself failing: nothing is
      // scheduled, and only a health monitor (if attached) brings the
      // context back.
      if (!core_.fault->ShouldLoseRestart()) {
        InputStage* self = this;
        core_.engine->ScheduleIn(core_.fault->context_restart_ps(),
                                 [self, ctx_index] { self->RestartContext(ctx_index); });
      }
      co_return;
    }
    co_await ring_.Acquire(member);
    // Token critical section: port check + DMA issue (§3.2.2). The
    // calibrated overhead models the signal test and branch shadow.
    //
    // Synthetic isolation fast path: the claim cannot fail (synthetic MPs
    // always materialize) and nothing can observe the instant it lands
    // inside the token hold, so the two pipeline occupancies around it
    // fuse into one — same cycle total, same token timeline, one fewer
    // event per MP.
    Claim claim;
    const bool fuse = fuse_static && core_.obs == nullptr && core_.fault == nullptr;
    if (fuse) {
      co_await ctx.Compute(costs.in_cs_port_check + cfg.hw.input_token_overhead_cycles +
                           costs.in_cs_dma_issue);
      st.reg_cycles += costs.in_cs_port_check;
      const bool claimed = ClaimNext(port, ctx_index, &claim);
      assert(claimed);
      (void)claimed;
      st.reg_cycles += costs.in_cs_dma_issue;
    } else {
      co_await ctx.Compute(costs.in_cs_port_check + cfg.hw.input_token_overhead_cycles);
      st.reg_cycles += costs.in_cs_port_check;

      if (!ClaimNext(port, ctx_index, &claim)) {
        ring_.Release(member);
        co_await ctx.Compute(costs.in_loop);
        // Idle port: give the engine to siblings rather than spinning hot.
        co_await ctx.Yield();
        continue;
      }
      co_await ctx.Compute(costs.in_cs_dma_issue);
      st.reg_cycles += costs.in_cs_dma_issue;
    }

    if (cfg.port_mode == PortMode::kReal) {
      // The DMA moves the MP from port memory to the context's RFIFO slot
      // across the IX bus; the token is released as soon as the transfer is
      // issued (Figure 5, lines 3-4).
      HwContext* self = &ctx;
      core_.chip->rx_dma().Transfer(64, [self] { self->MakeReady(); });
      ring_.Release(member);
      co_await ctx.Block();
      // Functional: the MP lands in this context's FIFO slot.
      FifoSlot& slot = core_.chip->rfifo().slot(ctx_index % core_.chip->rfifo().size());
      slot.data = claim.mp.data;
      slot.tag = claim.mp.tag;
      slot.valid = true;
    } else {
      ring_.Release(member);
    }

    if (fuse) {
      co_await ctx.Compute(costs.in_addr_calc + costs.in_fifo_copy + costs.in_protocol);
      st.reg_cycles += costs.in_addr_calc + costs.in_fifo_copy + costs.in_protocol;
    } else {
      co_await ctx.Compute(costs.in_addr_calc + costs.in_fifo_copy);
      st.reg_cycles += costs.in_addr_calc + costs.in_fifo_copy;
      if (core_.stack_pool != nullptr && claim.mp.tag.sop) {
        // §3.2.3 alternative: the buffer pop is an extra SRAM round trip.
        co_await ctx.Read(mem.sram(), 4);
        st.sram_reads += 1;
      }
      if (cfg.dram_direct_path) {
        // §3.7 ablation: the port's DMA already wrote the MP to DRAM, and
        // the context must fetch it from there rather than from a FIFO slot.
        mem.dram().Issue(64, /*is_write=*/true, nullptr);  // port -> DRAM (DMA)
        co_await ctx.Read(mem.dram(), 64);                 // DRAM -> registers
        st.dram_reads += 2;
        st.dram_writes += 2;
      }

      // Protocol processing (§3.2): classification + forwarder, charged per
      // MP. The route-cache entry is 8 bytes = two 4-byte SRAM reads.
      co_await ctx.Compute(costs.in_protocol);
      st.reg_cycles += costs.in_protocol;
    }
    co_await ctx.Read(mem.sram(), 4);
    co_await ctx.Read(mem.sram(), 4);
    st.sram_reads += 2;
    if (cfg.classifier == ClassifierMode::kFlowTable) {
      // Full classifier reads 20 B of flow metadata (§4.5).
      co_await ctx.Read(mem.sram(), 20);
      st.sram_reads += 5;
    }

    VrpCost vrp_cost;
    PortAssembly& as = assembly_[port];
    if (claim.mp.tag.sop) {
      claim.disp = ClassifyFirstMp(std::span<uint8_t>(claim.mp.data).first(claim.mp.tag.bytes),
                                   port, &vrp_cost, claim.mp.tag.packet_id, ObsUnitOf(ctx));
      as.disp = claim.disp;
      NPR_OBS_HOOK(core_.obs, Record(SpanPoint::kInClassified, claim.mp.tag.packet_id,
                                     ObsUnitOf(ctx), static_cast<uint16_t>(claim.disp.act)));
    } else {
      claim.disp = as.disp;
    }

    // Charge the measured VRP cost: instruction cycles inline, SRAM
    // transfers against the channel (reads awaited, writes posted).
    if (vrp_cost.cycles > 0) {
      co_await ctx.Compute(vrp_cost.cycles);
      st.reg_cycles += vrp_cost.cycles;
    }
    for (uint32_t i = 0; i < vrp_cost.sram_reads; ++i) {
      co_await ctx.Read(mem.sram(), 4);
      st.sram_reads += 1;
    }
    if (vrp_cost.sram_writes > 0) {
      ctx.PostBurst(mem.sram(), vrp_cost.sram_writes, 4);
      st.sram_writes += vrp_cost.sram_writes;
    }

    // Synthetic VRP blocks (Figures 9/10).
    for (uint32_t b = 0; b < cfg.vrp_blocks_reg; ++b) {
      co_await ctx.Compute(10);
      st.reg_cycles += 10;
    }
    for (uint32_t b = 0; b < cfg.vrp_blocks_sram; ++b) {
      co_await ctx.Read(mem.sram(), 4);
      st.sram_reads += 1;
    }

    // Copy the (possibly modified) MP from registers to DRAM: two 32-byte
    // transfers (Table 2).
    co_await ctx.Compute(costs.in_dram_copy);
    st.reg_cycles += costs.in_dram_copy;
    mem.dram_store().Write(claim.mp_addr, std::span<const uint8_t>(claim.mp.data));
    co_await ctx.Write(mem.dram(), 32);
    co_await ctx.Write(mem.dram(), 32);
    st.dram_writes += 2;

    st.mps += 1;
    if (claim.mp.tag.sop) {
      st.packets += 1;
    }

    if (claim.mp.tag.eop && claim.disp.act == Disposition::Act::kDrop) {
      ReleaseBuffer(core_, claim.buffer_addr);
    }
    // Enqueue on the packet's last MP (store-and-forward; identical to the
    // paper's cut-through for the 64-byte packets every experiment uses).
    if (claim.mp.tag.eop && claim.disp.act != Disposition::Act::kDrop) {
      PacketQueue* queue = nullptr;
      HwMutex* mutex = nullptr;
      bool to_port = false;
      switch (claim.disp.act) {
        case Disposition::Act::kQueue:
          queue = &core_.queues->QueueFor(ctx_index, claim.disp.out_port, claim.disp.priority);
          mutex = core_.queues->MutexFor(*queue);
          to_port = true;
          break;
        case Disposition::Act::kStrongArm:
          // The exception queues are not in the QueuePlan (their ids are
          // foreign to it); they are serialized by the bridge's HwMutex.
          queue = core_.sa_local_queue;
          core_.stats->exceptional += 1;
          break;
        case Disposition::Act::kPentium:
          queue = core_.sa_pentium_queue;
          core_.stats->to_pentium += 1;
          break;
        case Disposition::Act::kDrop:
          break;
      }

      if (mutex != nullptr && fuse) {
        co_await mutex->Acquire(ctx);
        st.mutex_ops += 2;
        // Mutex bookkeeping, the CAM probe pipeline stall (engine time, not
        // instructions — see HwConfig::mutex_pipeline_stall_cycles), and the
        // enqueue itself run back to back under the mutex, so they fuse into
        // one pipeline occupancy (same cycle total, two fewer events).
        co_await ctx.Compute(costs.in_mutex_ops + cfg.hw.mutex_pipeline_stall_cycles +
                             costs.in_enqueue);
        st.reg_cycles += costs.in_mutex_ops + costs.in_enqueue;
      } else {
        if (mutex != nullptr) {
          co_await mutex->Acquire(ctx);
          st.mutex_ops += 2;
          co_await ctx.Compute(costs.in_mutex_ops);
          st.reg_cycles += costs.in_mutex_ops;
          // CAM probe pipeline stall: engine time, not instructions (see
          // HwConfig::mutex_pipeline_stall_cycles).
          co_await ctx.Compute(cfg.hw.mutex_pipeline_stall_cycles);
        }
        co_await ctx.Compute(costs.in_enqueue);
        st.reg_cycles += costs.in_enqueue;
      }

      PacketDescriptor d;
      d.buffer_addr = claim.buffer_addr;
      d.mp_count = static_cast<uint16_t>(claim.mp_index + 1);
      d.out_port = claim.disp.out_port;
      d.exceptional = claim.disp.act != Disposition::Act::kQueue;
      d.generation = claim.generation;
      d.flow_handle = claim.disp.flow != nullptr ? claim.disp.flow->fid : 0;
      d.frame_bytes = static_cast<uint16_t>(claim.mp_index * 64 + claim.mp.tag.bytes);
      if (queue->Push(d)) {
        co_await ctx.Write(mem.sram(), 4);  // descriptor word
        st.sram_writes += 1;
        // Head pointer, readiness bit, allocator state, port statistics:
        // four posted Scratch writes (Table 2), issued as one burst.
        ctx.PostBurst(mem.scratch(), 4, 4);
        st.scratch_writes += 4;
        if (to_port) {
          core_.queues->MarkReady(*queue);
        } else if (core_.bridge != nullptr) {
          NotifyBridge(*core_.bridge);
        }
#if defined(NPR_OBS_ENABLED)
        if (core_.obs != nullptr) {
          const SpanPoint pt = claim.disp.act == Disposition::Act::kQueue ? SpanPoint::kInEnqueued
                               : claim.disp.act == Disposition::Act::kStrongArm
                                   ? SpanPoint::kInToSa
                                   : SpanPoint::kInToPe;
          core_.obs->Record(pt, claim.mp.tag.packet_id, ObsUnitOf(ctx), claim.disp.out_port);
        }
#endif
      } else {
        core_.stats->dropped_queue_full += 1;
        NPR_OBS_HOOK(core_.obs, Record(SpanPoint::kDropQueueFull, claim.mp.tag.packet_id,
                                       ObsUnitOf(ctx), claim.disp.out_port));
        ReleaseBuffer(core_, claim.buffer_addr);
      }
      if (mutex != nullptr) {
        mutex->Release();
      }
    }

    co_await ctx.Compute(costs.in_loop);
    st.reg_cycles += costs.in_loop;
  }
}

}  // namespace npr
