#include "src/core/queue_plan.h"

#include <cassert>

namespace npr {

QueuePlan::QueuePlan(EventQueue& engine, MemorySystem& memory, const RouterConfig& config,
                     Arena& sram_arena, Arena& scratch_arena, int num_input_contexts,
                     int num_output_contexts)
    : scratch_store_(memory.scratch_store()),
      input_queueing_(config.input_queueing),
      num_ports_(config.num_ports()),
      queues_per_port_(config.queues_per_port),
      num_input_contexts_(num_input_contexts) {
  const int queues_per_port_actual =
      input_queueing_ == InputQueueing::kPrivatePerContext ? num_input_contexts_
                                                           : queues_per_port_;
  const int total = num_ports_ * queues_per_port_actual;

  port_to_out_ctx_.resize(static_cast<size_t>(num_ports_));
  for (int p = 0; p < num_ports_; ++p) {
    port_to_out_ctx_[static_cast<size_t>(p)] = p % num_output_contexts;
  }

  by_output_ctx_.resize(static_cast<size_t>(num_output_contexts));
  ready_word_addr_.resize(static_cast<size_t>(num_output_contexts));
  for (int j = 0; j < num_output_contexts; ++j) {
    ready_word_addr_[static_cast<size_t>(j)] = scratch_arena.Alloc(4);
    scratch_store_.WriteU32(ready_word_addr_[static_cast<size_t>(j)], 0);
  }

  queues_.reserve(static_cast<size_t>(total));
  aux_.reserve(static_cast<size_t>(total));
  for (int p = 0; p < num_ports_; ++p) {
    for (int q = 0; q < queues_per_port_actual; ++q) {
      const int id = static_cast<int>(queues_.size());
      const uint32_t sram_base = sram_arena.Alloc(config.queue_capacity * 4);
      const uint32_t scratch_base = scratch_arena.Alloc(8);
      queues_.push_back(std::make_unique<PacketQueue>(
          memory.sram_store(), scratch_store_, sram_base, scratch_base, config.queue_capacity,
          id, /*dram_base=*/0, config.hw.buffer_bytes));

      QueueAux aux;
      aux.out_ctx = port_to_out_ctx_[static_cast<size_t>(p)];
      aux.port = static_cast<uint8_t>(p);
      if (input_queueing_ == InputQueueing::kProtectedPublic) {
        mutexes_.push_back(std::make_unique<HwMutex>(engine, memory.sram(),
                                                     config.hw.mutex_grant_cycles));
        aux.mutex = mutexes_.back().get();
      }
      auto& list = by_output_ctx_[static_cast<size_t>(aux.out_ctx)];
      aux.ready_word = ready_word_addr_[static_cast<size_t>(aux.out_ctx)];
      aux.ready_bit = static_cast<uint32_t>(list.size());
      assert(aux.ready_bit < 32 && "more queues per output context than readiness bits");
      list.push_back(queues_.back().get());
      aux_.push_back(aux);
    }
  }
}

size_t QueuePlan::IndexFor(int input_ctx, uint8_t out_port, uint32_t priority) const {
  if (input_queueing_ == InputQueueing::kPrivatePerContext) {
    return static_cast<size_t>(out_port) * static_cast<size_t>(num_input_contexts_) +
           static_cast<size_t>(input_ctx);
  }
  assert(priority < static_cast<uint32_t>(queues_per_port_));
  return static_cast<size_t>(out_port) * static_cast<size_t>(queues_per_port_) + priority;
}

PacketQueue& QueuePlan::QueueFor(int input_ctx, uint8_t out_port, uint32_t priority) {
  return *queues_[IndexFor(input_ctx, out_port, priority)];
}

// Queues not built by this plan (the bridge's exception queues) carry ids
// outside aux_; they have no plan mutex or readiness bit.
bool QueuePlan::Owns(const PacketQueue& queue) const {
  return static_cast<size_t>(queue.id()) < aux_.size() &&
         queues_[static_cast<size_t>(queue.id())].get() == &queue;
}

HwMutex* QueuePlan::MutexFor(const PacketQueue& queue) {
  if (!Owns(queue)) {
    return nullptr;
  }
  return aux_[static_cast<size_t>(queue.id())].mutex;
}

void QueuePlan::MarkReady(const PacketQueue& queue) {
  if (!Owns(queue)) {
    return;
  }
  const QueueAux& aux = aux_[static_cast<size_t>(queue.id())];
  const uint32_t word = scratch_store_.ReadU32(aux.ready_word);
  scratch_store_.WriteU32(aux.ready_word, word | (1u << aux.ready_bit));
}

void QueuePlan::ClearReady(const PacketQueue& queue) {
  if (!Owns(queue)) {
    return;
  }
  const QueueAux& aux = aux_[static_cast<size_t>(queue.id())];
  const uint32_t word = scratch_store_.ReadU32(aux.ready_word);
  scratch_store_.WriteU32(aux.ready_word, word & ~(1u << aux.ready_bit));
}

bool QueuePlan::IsReady(const PacketQueue& queue) const {
  if (!Owns(queue)) {
    return false;
  }
  const QueueAux& aux = aux_[static_cast<size_t>(queue.id())];
  return (scratch_store_.ReadU32(aux.ready_word) >> aux.ready_bit & 1) != 0;
}

uint64_t QueuePlan::TotalDrops() const {
  uint64_t drops = 0;
  for (const auto& q : queues_) {
    drops += q->drops();
  }
  return drops;
}

}  // namespace npr
