// Queue allocation and port mapping (§3.4).
//
// Builds the set of packet queues implied by the configured disciplines:
//   I.2 protected: `queues_per_port` shared queues per output port, each
//       guarded by a hardware CAM mutex;
//   I.1 private:   one queue per (input context, output port) — no locks,
//       but the output side must service many more queues (O.3).
// Output contexts are statically assigned whole ports (§3.4.4), and for
// O.3 each output context gets a Scratch readiness bit-array so it checks
// one word instead of every head pointer (§3.4.3).

#ifndef SRC_CORE_QUEUE_PLAN_H_
#define SRC_CORE_QUEUE_PLAN_H_

#include <memory>
#include <vector>

#include "src/core/mem_map.h"
#include "src/core/packet_queue.h"
#include "src/core/router_config.h"
#include "src/ixp/hw_mutex.h"
#include "src/mem/memory_system.h"
#include "src/sim/event_queue.h"

namespace npr {

class QueuePlan {
 public:
  QueuePlan(EventQueue& engine, MemorySystem& memory, const RouterConfig& config,
            Arena& sram_arena, Arena& scratch_arena, int num_input_contexts,
            int num_output_contexts);

  // The queue an input context must use for (port, priority).
  PacketQueue& QueueFor(int input_ctx, uint8_t out_port, uint32_t priority);
  // Whether this plan built the queue. The bridge's exception queues are
  // not in the plan; plan accessors treat them as mutex-less and not ready.
  bool Owns(const PacketQueue& queue) const;
  // The mutex protecting that queue, or nullptr under private queueing
  // (and for queues the plan does not own).
  HwMutex* MutexFor(const PacketQueue& queue);

  // Queues an output context services, highest priority first.
  const std::vector<PacketQueue*>& QueuesForOutputContext(int out_ctx) const {
    return by_output_ctx_[static_cast<size_t>(out_ctx)];
  }
  int OutputContextForPort(uint8_t port) const {
    return port_to_out_ctx_[static_cast<size_t>(port)];
  }
  // The output port a queue feeds.
  uint8_t PortOf(const PacketQueue& queue) const {
    return aux_[static_cast<size_t>(queue.id())].port;
  }

  // Readiness bit-array support (O.3).
  uint32_t ReadyWordAddr(int out_ctx) const {
    return ready_word_addr_[static_cast<size_t>(out_ctx)];
  }
  void MarkReady(const PacketQueue& queue);
  void ClearReady(const PacketQueue& queue);
  bool IsReady(const PacketQueue& queue) const;

  const std::vector<std::unique_ptr<PacketQueue>>& all_queues() const { return queues_; }
  uint64_t TotalDrops() const;

 private:
  struct QueueAux {
    HwMutex* mutex = nullptr;  // owned below
    int out_ctx = 0;
    uint8_t port = 0;
    uint32_t ready_word = 0;  // scratch address
    uint32_t ready_bit = 0;
  };

  BackingStore& scratch_store_;
  const InputQueueing input_queueing_;
  const int num_ports_;
  const int queues_per_port_;
  const int num_input_contexts_;

  std::vector<std::unique_ptr<PacketQueue>> queues_;
  std::vector<QueueAux> aux_;  // parallel to queues_
  std::vector<std::unique_ptr<HwMutex>> mutexes_;
  std::vector<std::vector<PacketQueue*>> by_output_ctx_;
  std::vector<int> port_to_out_ctx_;
  std::vector<uint32_t> ready_word_addr_;  // per output context

  size_t IndexFor(int input_ctx, uint8_t out_port, uint32_t priority) const;
};

}  // namespace npr

#endif  // SRC_CORE_QUEUE_PLAN_H_
