// Packet buffer allocation in DRAM (§3.2.3).
//
// 16 MB of DRAM is divided into 8192 buffers of 2 KB (each large enough for
// a maximal 1518-octet frame), consumed circularly as packets arrive. The
// paper's deliberate design quirk is preserved: a buffer is valid for one
// lap of the ring; if the output side has not drained it by the time the
// allocator wraps around, the packet is silently overwritten ("effectively
// lost"). Lap detection statistics expose when that happens.
//
// The per-port stack pool the paper describes but chose not to build
// (hardware push/pop support) is also provided for the ablation bench.

#ifndef SRC_CORE_BUFFER_ALLOCATOR_H_
#define SRC_CORE_BUFFER_ALLOCATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/sim/time.h"

namespace npr {

// Simulator-side sidecar metadata for the packet occupying a buffer (not
// hardware state; used for end-to-end verification and latency accounting).
struct BufferMeta {
  uint32_t packet_id = 0;
  uint8_t arrival_port = 0;
  SimTime ingress_time = 0;
  uint64_t generation = 0;  // allocator lap when this buffer was issued
};

class CircularBufferAllocator {
 public:
  CircularBufferAllocator(uint32_t dram_base, uint32_t buffer_bytes, uint32_t num_buffers);

  // Issues the next buffer in ring order; never fails (old contents are
  // overwritten). Returns the DRAM byte address.
  uint32_t Allocate(const BufferMeta& meta);

  // True if the buffer at `addr` still belongs to generation `generation`
  // (i.e. the allocator has not lapped it). The output stage checks this to
  // detect overwritten packets.
  bool StillValid(uint32_t addr, uint64_t generation) const;

  const BufferMeta& MetaFor(uint32_t addr) const;
  uint32_t IndexOf(uint32_t addr) const;
  uint32_t AddressOf(uint32_t index) const { return dram_base_ + index * buffer_bytes_; }

  uint32_t buffer_bytes() const { return buffer_bytes_; }
  uint32_t num_buffers() const { return num_buffers_; }
  uint64_t allocations() const { return allocations_; }
  uint64_t laps() const { return allocations_ / num_buffers_; }

 private:
  const uint32_t dram_base_;
  const uint32_t buffer_bytes_;
  const uint32_t num_buffers_;
  uint32_t next_ = 0;
  uint64_t allocations_ = 0;
  std::vector<BufferMeta> meta_;
  std::vector<uint64_t> generation_;
};

// The alternative the paper sketches: a stack of free buffers per output
// port, so lifetime is explicit and no packet can be overwritten. Costs an
// extra push/pop (SRAM) per packet — measured in bench/ablation.
class StackBufferPool {
 public:
  StackBufferPool(uint32_t dram_base, uint32_t buffer_bytes, uint32_t num_buffers);

  std::optional<uint32_t> Allocate(const BufferMeta& meta);
  void Free(uint32_t addr);

  const BufferMeta& MetaFor(uint32_t addr) const;
  uint32_t free_count() const { return static_cast<uint32_t>(free_.size()); }
  uint64_t failed_allocations() const { return failures_; }

 private:
  const uint32_t dram_base_;
  const uint32_t buffer_bytes_;
  const uint32_t num_buffers_;
  std::vector<uint32_t> free_;  // stack of buffer indexes
  std::vector<BufferMeta> meta_;
  uint64_t failures_ = 0;
};

}  // namespace npr

#endif  // SRC_CORE_BUFFER_ALLOCATOR_H_
