#include "src/core/prop_share.h"

#include <algorithm>
#include <limits>

namespace npr {

void PropShareScheduler::ConfigureFlow(uint32_t fid, double tickets) {
  Flow& f = flows_[fid];
  f.tickets = std::max(tickets, 1e-6);
  // Joining flows start at the global pass so they cannot sweep the
  // scheduler with accumulated credit.
  f.pass = std::max(f.pass, global_pass_);
}

void PropShareScheduler::RemoveFlow(uint32_t fid) {
  auto it = flows_.find(fid);
  if (it != flows_.end()) {
    backlog_ -= it->second.queue.size();
    flows_.erase(it);
  }
}

void PropShareScheduler::Enqueue(uint32_t fid, HostPacket packet) {
  auto it = flows_.find(fid);
  if (it == flows_.end()) {
    ConfigureFlow(fid, 1.0);
    it = flows_.find(fid);
  }
  // A flow waking from idle resumes at the current global pass.
  if (it->second.queue.empty()) {
    it->second.pass = std::max(it->second.pass, global_pass_);
  }
  it->second.queue.push_back(std::move(packet));
  ++backlog_;
}

std::optional<HostPacket> PropShareScheduler::Next() {
  Flow* best = nullptr;
  for (auto& [fid, flow] : flows_) {
    if (flow.queue.empty()) {
      continue;
    }
    if (best == nullptr || flow.pass < best->pass) {
      best = &flow;
    }
  }
  if (best == nullptr) {
    return std::nullopt;
  }
  HostPacket packet = std::move(best->queue.front());
  best->queue.pop_front();
  --backlog_;
  best->pass += kStrideScale / best->tickets;
  global_pass_ = best->pass;
  ++best->served;
  return packet;
}

uint64_t PropShareScheduler::served(uint32_t fid) const {
  auto it = flows_.find(fid);
  return it == flows_.end() ? 0 : it->second.served;
}

}  // namespace npr
