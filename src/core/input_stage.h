// Input pipeline stage (§3.2, Figure 5).
//
// A statically allocated set of MicroEngine contexts runs the input loop:
// acquire the token (which serializes the DMA state machine), claim the
// next MP from the context's port, DMA it into the receive FIFO, copy it to
// registers, run protocol processing (classifier + VRP forwarders), copy it
// to DRAM, and — on the packet's last MP — enqueue a descriptor toward the
// output stage, the StrongARM, or the Pentium.
//
// The token rotation interleaves MicroEngines and places the two contexts
// serving the same port maximally far apart (§3.2.2). All costs charged
// here follow the StageCosts decomposition of Table 2.

#ifndef SRC_CORE_INPUT_STAGE_H_
#define SRC_CORE_INPUT_STAGE_H_

#include <memory>
#include <vector>

#include "src/core/classifier.h"
#include "src/core/router_core.h"
#include "src/ixp/token_ring.h"
#include "src/net/packet.h"
#include "src/sim/random.h"
#include "src/sim/task.h"

namespace npr {

class InputStage {
 public:
  InputStage(RouterCore& core, Classifier& classifier);

  // Installs and starts the context programs. Call once.
  void Start();

  TokenRing& token_ring() { return ring_; }
  int num_contexts() const { return static_cast<int>(members_.size()); }

  // Health-monitor recovery interface. RecoverContext reinstalls a crashed
  // context whose scheduled restart was lost; it is a no-op if the context
  // is up (or a restart already ran), so watchdog and normal restart can
  // race safely.
  void RecoverContext(int ctx_index);
  bool ContextDown(int ctx_index) const;
  SimTime ContextDownSincePs(int ctx_index) const;

  // Synthetic packets generated in InfiniteFifo mode.
  uint64_t synthetic_generated() const { return synthetic_seq_; }

  // Ports with a packet mid-assembly (counted for packet conservation).
  int partial_assemblies() const;

 private:
  // What one token-holding claim produced: an MP plus its DRAM placement
  // and (from the first MP) the packet's disposition.
  struct Disposition {
    enum class Act : uint8_t { kQueue, kStrongArm, kPentium, kDrop };
    Act act = Act::kDrop;
    uint8_t out_port = 0;
    uint32_t priority = 0;
    const FlowMeta* flow = nullptr;
  };
  struct Claim {
    Mp mp;
    uint32_t mp_addr = 0;      // DRAM address for this MP
    uint32_t buffer_addr = 0;  // packet's buffer base
    uint16_t mp_index = 0;
    uint64_t generation = 0;
    Disposition disp;          // valid on eop (sticky from sop)
  };
  // Per-port packet assembly state, updated under the token.
  struct PortAssembly {
    bool in_packet = false;
    uint32_t buffer_addr = 0;
    uint16_t next_mp = 0;
    uint64_t generation = 0;
    Disposition disp;
  };

  Task ContextLoop(HwContext& ctx, int member, int ctx_index, uint8_t port);

  // Reinstalls a crashed context's loop and rejoins it to the token ring.
  void RestartContext(int ctx_index);

  // Claims the next MP (real port or synthesized), allocating a buffer on
  // start-of-packet. Runs inside the token critical section.
  bool ClaimNext(uint8_t port, int ctx_index, Claim* claim);

  // Classifies the first MP and applies the minimal-IP transform in place.
  // Returns the VRP cost to charge (per-flow program + general chain).
  // `packet_id`/`obs_unit` identify the packet and executing context for
  // span records emitted next to the drop/trap counters.
  Disposition ClassifyFirstMp(std::span<uint8_t> mp_bytes, uint8_t arrival_port,
                              VrpCost* vrp_cost, uint32_t packet_id, uint8_t obs_unit);

  Mp SynthesizeMp(int ctx_index);

  RouterCore& core_;
  Classifier& classifier_;
  TokenRing ring_;
  std::vector<HwContext*> members_;  // ring order
  std::vector<int> member_index_;    // ring member id per context (restart)
  std::vector<uint8_t> port_of_;     // port served per context (restart)
  std::vector<Task> holder_;         // not used: tasks installed into contexts
  std::vector<PortAssembly> assembly_;
  Rng rng_;
  uint64_t synthetic_seq_ = 0;
  // One pre-built 64-byte frame per destination port (InfiniteFifo mode).
  std::vector<Packet> templates_;
};

}  // namespace npr

#endif  // SRC_CORE_INPUT_STAGE_H_
