// Proportional-share packet scheduler for the Pentium (§4.1).
//
// The paper runs a proportional-share scheduler on the Pentium so control
// protocols (OSPF) keep their cycle reservation no matter how hot a
// forwarder flow runs, and per-flow services reserve both a packet rate and
// a cycle rate [19]. Implemented as stride scheduling: each flow has
// tickets proportional to its share; the flow with the minimum pass is
// served and its pass advances by stride = K / tickets.

#ifndef SRC_CORE_PROP_SHARE_H_
#define SRC_CORE_PROP_SHARE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "src/core/packet_queue.h"

namespace npr {

// A packet as the Pentium sees it: the descriptor plus how many bytes have
// crossed PCI (the head, or the whole frame for body-reading forwarders).
struct HostPacket {
  PacketDescriptor desc;
  uint32_t bytes_moved = 0;
};

class PropShareScheduler {
 public:
  // Registers (or re-registers) a flow with `tickets` proportional share.
  // Flow 0 is the control-traffic flow.
  void ConfigureFlow(uint32_t fid, double tickets);
  void RemoveFlow(uint32_t fid);

  // Enqueues onto the flow's backlog. Unregistered flows are auto-added
  // with 1 ticket.
  void Enqueue(uint32_t fid, HostPacket packet);

  // Serves the backlogged flow with minimum pass. Nullopt when idle.
  std::optional<HostPacket> Next();

  size_t backlog() const { return backlog_; }
  uint64_t served(uint32_t fid) const;

 private:
  struct Flow {
    double tickets = 1.0;
    double pass = 0.0;
    uint64_t served = 0;
    std::deque<HostPacket> queue;
  };

  static constexpr double kStrideScale = 1e6;

  std::map<uint32_t, Flow> flows_;
  double global_pass_ = 0.0;
  size_t backlog_ = 0;
};

}  // namespace npr

#endif  // SRC_CORE_PROP_SHARE_H_
