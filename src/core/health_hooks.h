// Abstract health-monitor hooks.
//
// The data path (input stage, bridge) needs to notify the health subsystem
// and query degraded-mode policy, but npr_core cannot depend on npr_health
// (which links against it). This minimal interface lives in src/core; the
// HealthMonitor in src/health implements it and attaches itself through
// Router::set_health_hooks(). A null pointer (the default) means no health
// monitoring — the zero-overhead configuration.

#ifndef SRC_CORE_HEALTH_HOOKS_H_
#define SRC_CORE_HEALTH_HOOKS_H_

#include <cstdint>

namespace npr {

class HealthHooks {
 public:
  virtual ~HealthHooks() = default;

  // A VRP program (ISTORE handle `program_id`) trapped at runtime. Called
  // synchronously from the input stage's classify path; implementations
  // must only record/schedule, never mutate the ISTORE inline.
  virtual void OnVrpTrap(uint32_t program_id) = 0;

  // True while the Pentium is considered unresponsive and Pentium-bound
  // packets should be shed at the bridge instead of wedging path C.
  virtual bool ShedPentiumBound() const = 0;
};

}  // namespace npr

#endif  // SRC_CORE_HEALTH_HOOKS_H_
