// Native forwarder interface for code that runs on the StrongARM or the
// Pentium (§4.1, §4.4).
//
// ME-level data forwarders are VRP programs (src/vrp); forwarders too
// expensive for the VRP budget — full IP with options, TCP proxies, control
// protocols — are native C++ with a *declared* per-packet cycle cost that
// admission control checks and the simulated processor charges.

#ifndef SRC_CORE_FORWARDER_H_
#define SRC_CORE_FORWARDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/mem/backing_store.h"
#include "src/net/packet.h"
#include "src/route/route_table.h"
#include "src/sim/time.h"

namespace npr {

enum class NativeAction : uint8_t {
  kForward,  // send to out_port chosen in the context
  kDrop,
  kConsume,  // control packet absorbed (e.g. routing update)
};

struct NativeContext {
  Packet* packet = nullptr;
  // Flow state window in simulated SRAM.
  BackingStore* sram = nullptr;
  uint32_t state_addr = 0;
  uint32_t state_bytes = 0;
  RouteTable* routes = nullptr;
  SimTime now = 0;
  // In/out: destination port (pre-set from classification; forwarder may
  // override).
  uint8_t out_port = 0;
  // Out: extra cycles beyond the declared cost actually consumed this
  // packet (e.g. a route-table walk whose length is data dependent).
  uint32_t extra_cycles = 0;
};

class NativeForwarder {
 public:
  virtual ~NativeForwarder() = default;

  virtual const std::string& name() const = 0;
  // Declared worst-case cycles per packet (admission input; also what the
  // hosting processor is charged, plus NativeContext::extra_cycles).
  virtual uint32_t cycles_per_packet() const = 0;
  // Bytes of per-flow state required.
  virtual uint32_t state_bytes() const { return 0; }
  // True if the forwarder reads/writes the packet body (the bridge must
  // then move the whole packet over PCI, §3.7).
  virtual bool needs_packet_body() const { return false; }

  virtual NativeAction Process(NativeContext& ctx) = 0;
};

// A processor's jump table (§4.5: "the StrongARM boots with a fixed set of
// forwarders"; the Pentium has an analogous table).
class ForwarderRegistry {
 public:
  // Returns the jump-table index.
  int Register(std::unique_ptr<NativeForwarder> forwarder) {
    table_.push_back(std::move(forwarder));
    return static_cast<int>(table_.size()) - 1;
  }

  NativeForwarder* Get(int index) {
    if (index < 0 || index >= static_cast<int>(table_.size())) {
      return nullptr;
    }
    return table_[static_cast<size_t>(index)].get();
  }

  int size() const { return static_cast<int>(table_.size()); }

 private:
  std::vector<std::unique_ptr<NativeForwarder>> table_;
};

}  // namespace npr

#endif  // SRC_CORE_FORWARDER_H_
