#include "src/core/packet_queue.h"

#include <algorithm>
#include <cassert>

#include "src/fault/fault_injector.h"
#include "src/obs/observer.h"

namespace npr {

namespace {

// The fields carried by the encoded word; generation/flow/frame live only in
// the sidecar.
bool EncodedFieldsMatch(const PacketDescriptor& a, const PacketDescriptor& b) {
  return a.buffer_addr == b.buffer_addr && a.mp_count == b.mp_count && a.out_port == b.out_port &&
         a.exceptional == b.exceptional;
}

}  // namespace

uint32_t PacketDescriptor::Encode(uint32_t dram_base, uint32_t buffer_bytes) const {
  const uint32_t index = (buffer_addr - dram_base) / buffer_bytes;
  return (index & 0x1fff) | (static_cast<uint32_t>(mp_count) & 0x3f) << 13 |
         (static_cast<uint32_t>(out_port) & 0xf) << 19 | (exceptional ? 1u << 23 : 0);
}

PacketDescriptor PacketDescriptor::Decode(uint32_t word, uint32_t dram_base,
                                          uint32_t buffer_bytes) {
  PacketDescriptor d;
  d.buffer_addr = dram_base + (word & 0x1fff) * buffer_bytes;
  d.mp_count = static_cast<uint16_t>((word >> 13) & 0x3f);
  d.out_port = static_cast<uint8_t>((word >> 19) & 0xf);
  d.exceptional = (word >> 23 & 1) != 0;
  return d;
}

PacketQueue::PacketQueue(BackingStore& sram, BackingStore& scratch, uint32_t sram_base,
                         uint32_t scratch_base, uint32_t capacity, int id, uint32_t dram_base,
                         uint32_t buffer_bytes)
    : sram_(sram),
      scratch_(scratch),
      sram_base_(sram_base),
      scratch_base_(scratch_base),
      capacity_(capacity),
      id_(id),
      dram_base_(dram_base),
      buffer_bytes_(buffer_bytes),
      sidecar_(capacity) {
  scratch_.WriteU32(head_scratch_addr(), 0);
  scratch_.WriteU32(tail_scratch_addr(), 0);
}

uint32_t PacketQueue::size() const {
  const uint32_t head = scratch_.ReadU32(head_scratch_addr());
  const uint32_t tail = scratch_.ReadU32(tail_scratch_addr());
  return head - tail;  // monotonically increasing indexes; wrap via modulo below
}

bool PacketQueue::Push(const PacketDescriptor& d) {
  const uint32_t head = scratch_.ReadU32(head_scratch_addr());
  const uint32_t tail = scratch_.ReadU32(tail_scratch_addr());
  if (head - tail >= capacity_) {
    ++drops_;
    return false;
  }
  const uint32_t slot = head % capacity_;
  sram_.WriteU32(entry_sram_addr(slot), d.Encode(dram_base_, buffer_bytes_));
  sidecar_[slot] = d;
  scratch_.WriteU32(head_scratch_addr(), head + 1);
  ++pushes_;
  NPR_OBS_HOOK(tracer_, Record(SpanPoint::kQueuePush, (d.buffer_addr - dram_base_) / buffer_bytes_,
                               kUnitQueue, static_cast<uint16_t>(id_ & 0xffff)));
  max_depth_ = std::max(max_depth_, head + 1 - tail);
  return true;
}

std::optional<PacketDescriptor> PacketQueue::Pop() {
  const uint32_t head = scratch_.ReadU32(head_scratch_addr());
  const uint32_t tail = scratch_.ReadU32(tail_scratch_addr());
  if (head == tail) {
    return std::nullopt;
  }
  const uint32_t slot = tail % capacity_;
  uint32_t word = sram_.ReadU32(entry_sram_addr(slot));
  if (fault_ != nullptr) {
    fault_->MaybeCorruptDescriptor(&word);
  }
  PacketDescriptor d = PacketDescriptor::Decode(word, dram_base_, buffer_bytes_);
  // The hardware word is authoritative; sidecar carries what it cannot.
  d.generation = sidecar_[slot].generation;
  d.flow_handle = sidecar_[slot].flow_handle;
  d.frame_bytes = sidecar_[slot].frame_bytes;
  if (!EncodedFieldsMatch(d, sidecar_[slot])) {
    // A corrupted descriptor must never be followed: discard the entry and
    // count it so packet conservation still balances.
    assert(fault_ != nullptr && "sidecar out of sync with SRAM ring");
    scratch_.WriteU32(tail_scratch_addr(), tail + 1);
    ++corrupt_drops_;
    NPR_OBS_HOOK(tracer_, Record(SpanPoint::kQueueCorrupt, slot, kUnitQueue,
                                 static_cast<uint16_t>(id_ & 0xffff)));
    return std::nullopt;
  }
  scratch_.WriteU32(tail_scratch_addr(), tail + 1);
  ++pops_;
  NPR_OBS_HOOK(tracer_, Record(SpanPoint::kQueuePop, (d.buffer_addr - dram_base_) / buffer_bytes_,
                               kUnitQueue, static_cast<uint16_t>(id_ & 0xffff)));
  return d;
}

std::optional<PacketDescriptor> PacketQueue::PeekTail() const {
  const uint32_t head = scratch_.ReadU32(head_scratch_addr());
  const uint32_t tail = scratch_.ReadU32(tail_scratch_addr());
  if (head == tail) {
    return std::nullopt;
  }
  return sidecar_[tail % capacity_];
}

uint32_t PacketQueue::CheckConsistency() const {
  const uint32_t head = scratch_.ReadU32(head_scratch_addr());
  const uint32_t tail = scratch_.ReadU32(tail_scratch_addr());
  if (head - tail > capacity_) {
    return head - tail;  // impossible occupancy: report it loudly
  }
  uint32_t mismatches = 0;
  for (uint32_t i = tail; i != head; ++i) {
    const uint32_t slot = i % capacity_;
    const uint32_t word = sram_.ReadU32(entry_sram_addr(slot));
    const PacketDescriptor d = PacketDescriptor::Decode(word, dram_base_, buffer_bytes_);
    if (!EncodedFieldsMatch(d, sidecar_[slot])) {
      ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace npr
