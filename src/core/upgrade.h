// In-service forwarder upgrade orchestrator (hitless upgrade).
//
// Replaces a MicroEngine forwarder old -> new with zero packet loss for
// conforming traffic, in four guarded phases:
//
//   shadow   — the candidate image runs in the interpreter against a
//              pristine copy of every live MP the flow sees, updating a
//              private migrated copy of the flow state. Verdict, queue
//              choice, and resulting MP bytes are compared against the
//              active image per packet; the divergence rate decides
//              whether cutover is scheduled or the upgrade aborts with
//              the wire untouched.
//   cutover  — between two packets (per-MP classification is atomic in
//              simulated time) the live flow state is migrated through the
//              per-version layout map, the double-buffered ISTORE image
//              flips, and the flow table re-points at the new state
//              region. The old image and its state region are retained.
//   soak     — the roles reverse: the old image shadows the new one and
//              keeps the retained state current, so a rollback restores
//              forwarding bit-identical to a never-upgraded run. Any trap
//              of the new image, divergence above threshold, or a false
//              external probe (callers wrap RouterInvariants) triggers
//              rollback, recorded with fault/detect/recover timestamps.
//   promote  — a clean soak drops the retained image and frees the old
//              state region.
//
// A cutover step lost mid-way (FaultPlan::upgrade_crash_p) is caught by a
// step-deadline watchdog and aborted cleanly: the commit never happened, so
// the old image never stopped serving.
//
// The data-path hooks (BeginPacket/EndPacket, called by the input stage)
// charge zero simulated cycles and draw no Rng, so a fault-free run with an
// orchestrator attached is bit-identical to one without. All state
// mutations (cutover, rollback, abort, promote) run from scheduled events,
// never from inside a classify call.
//
// Like HealthMonitor, the orchestrator must be destroyed before the router
// and must not outlive the last RunFor it scheduled work in.

#ifndef SRC_CORE_UPGRADE_H_
#define SRC_CORE_UPGRADE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/sim/time.h"
#include "src/vrp/interpreter.h"
#include "src/vrp/isa.h"

namespace npr {

class Router;

// Rewrites a flow's old-layout state bytes into the new image's layout.
// Called twice per upgrade: once on a snapshot before the shadow phase and
// once on the live state at cutover. The spans bound both layouts, so a
// migrator cannot read or write outside either version's declared `.state`
// size. Returning false vetoes the upgrade. When absent, the identity
// migration copies min(old, new) bytes and zero-fills the rest.
using StateMigrator = std::function<bool(std::span<const uint8_t> old_state,
                                         std::span<uint8_t> new_state)>;

struct UpgradeConfig {
  // --- shadow phase ---
  SimTime shadow_window_ps = 200 * kPsPerUs;
  // Cutover needs at least this much shadow evidence; below it the window
  // extends by `probe_period_ps` at a time.
  uint64_t shadow_min_packets = 32;
  // Abort (wire untouched) when the shadow divergence rate exceeds this.
  double shadow_abort_divergence = 0.25;

  // --- cutover ---
  // Watchdog deadline for the cutover step; a step lost to upgrade_crash_p
  // is aborted cleanly when this expires.
  SimTime step_deadline_ps = 500 * kPsPerUs;

  // --- soak phase ---
  SimTime soak_window_ps = 400 * kPsPerUs;
  uint64_t soak_min_packets = 32;
  // Roll back when the soak divergence rate (new image vs old shadow)
  // exceeds this.
  double soak_rollback_divergence = 0.05;
  // Cadence for the external probe and the divergence-rate check.
  SimTime probe_period_ps = 50 * kPsPerUs;
  // External invariant probe polled during soak; false triggers rollback.
  // Callers typically wrap RouterInvariants::CheckAll (the orchestrator
  // cannot depend on it — core sits below the fault/health layers).
  std::function<bool()> soak_probe;
};

enum class UpgradePhase : uint8_t {
  kIdle,
  kShadow,
  kCutover,  // step scheduled; watchdog armed
  kSoak,
  kPromoted,
  kRolledBack,
  kAborted,
};

const char* UpgradePhaseName(UpgradePhase phase);

// One rollback (or watchdog-abort) episode, with the same timestamp triple
// RecoveryEvent uses; HealthMonitor folds these into its event stream as
// RecoveryEvent::Kind::kUpgradeRollback.
struct UpgradeRollbackRecord {
  SimTime fault_at = 0;      // first divergence or trap of the new image
  SimTime detected_at = 0;   // when the rollback decision was made
  SimTime recovered_at = 0;  // when the old image and state were live again
  std::string reason;
};

struct UpgradeReport {
  SimTime began_at = 0;
  SimTime cutover_at = 0;
  SimTime finished_at = 0;  // promoted, rolled back, or aborted
  uint64_t shadow_packets = 0;
  uint64_t shadow_divergences = 0;
  uint64_t soak_packets = 0;
  uint64_t soak_divergences = 0;
  // State bytes rewritten at cutover (old read + new written).
  uint64_t migrated_bytes = 0;
  // StrongARM cycles the atomic window costs: the state words moved plus
  // the image pointer flip, at the §4.5 cost of 40 cycles per access. The
  // double-buffered image itself was staged outside the window.
  uint64_t cutover_pause_cycles = 0;
  std::string error;  // why the upgrade ended early (rollback/abort reason)
};

class UpgradeOrchestrator {
 public:
  // Attaches to the router (Router::SetUpgrade). One upgrade in flight at a
  // time; Begin after promote/rollback/abort starts a fresh episode.
  explicit UpgradeOrchestrator(Router& router, UpgradeConfig config = UpgradeConfig{});
  ~UpgradeOrchestrator();

  UpgradeOrchestrator(const UpgradeOrchestrator&) = delete;
  UpgradeOrchestrator& operator=(const UpgradeOrchestrator&) = delete;

  // Starts upgrading flow `fid` (per-flow or general MicroEngine forwarder)
  // to `next`. `image_checksum`, when nonzero, must match VrpImageChecksum
  // of the bytes that arrived — a corrupted image is refused here, before
  // any resource is touched. Returns false with last_error() set on
  // rejection (checksum, admission, staging, or migration veto).
  bool Begin(uint32_t fid, const VrpProgram& next, uint64_t image_checksum = 0,
             StateMigrator migrate = nullptr);

  // --- data-path hooks (input stage; zero simulated cost, no Rng) ---

  // Snapshots the pristine MP before the active image runs, when `handle`
  // is under shadow or soak.
  void BeginPacket(uint32_t handle, std::span<const uint8_t> mp);
  // Runs the counterpart image on the snapshot and compares verdict, queue
  // choice, and MP bytes; during soak a trap of the active (new) image
  // schedules rollback.
  void EndPacket(uint32_t handle, std::span<const uint8_t> mp, const VrpOutcome& active);

  // --- decision audit (bit-identity tests) ---

  // Records a hash of every EndPacket decision for `handle` (action, queue,
  // resulting MP bytes), indexed by the flow's packet sequence. Two runs
  // whose suffixes match forwarded identically over those packets.
  void RecordDecisions(uint32_t handle);
  const std::vector<uint64_t>& decisions() const { return decisions_; }

  // --- state ---

  UpgradePhase phase() const { return phase_; }
  // Swaps the window/threshold configuration between episodes (refused while
  // one is in flight). The rolling coordinator downgrades aborted clusters
  // through the same orchestrators with much shorter windows.
  bool set_config(UpgradeConfig config) {
    if (InFlight()) {
      return false;
    }
    cfg_ = std::move(config);
    return true;
  }
  const UpgradeConfig& config() const { return cfg_; }
  // True while an episode holds resources (shadow through soak).
  bool InFlight() const {
    return phase_ == UpgradePhase::kShadow || phase_ == UpgradePhase::kCutover ||
           phase_ == UpgradePhase::kSoak;
  }
  const UpgradeReport& report() const { return report_; }
  const std::string& last_error() const { return last_error_; }
  const std::vector<UpgradeRollbackRecord>& rollbacks() const { return rollbacks_; }
  // SRAM bytes (align-rounded) the orchestrator holds beyond the flow
  // table's reservations: the staged region before cutover, the retained
  // region during soak. RouterInvariants' memory-bounds ledger adds this.
  uint32_t held_state_bytes() const;

 private:
  void Schedule(SimTime dt, void (UpgradeOrchestrator::*fn)());
  // Reads the current old-layout state and writes the migrated image into
  // the new region. False when a user migrator vetoes.
  bool MigrateState();
  void FreeNewRegion();
  void FreeOldRegion();
  void EvaluateShadow();
  void CutoverStep();
  void CutoverWatchdog();
  void SoakTick();
  void EvaluateSoak();
  void RollbackFromTrap();
  void DoCutover();
  void DoPromote();
  void DoRollback(const std::string& reason);
  void DoAbort(const std::string& reason, bool record_episode);
  double ShadowDivergenceRate() const;
  double SoakDivergenceRate() const;

  Router& router_;
  UpgradeConfig cfg_;

  UpgradePhase phase_ = UpgradePhase::kIdle;
  // Bumped per episode; scheduled events from a finished episode no-op.
  uint64_t epoch_ = 0;
  UpgradeReport report_;
  std::string last_error_;
  std::vector<UpgradeRollbackRecord> rollbacks_;

  // Active episode.
  uint32_t fid_ = 0;
  uint32_t handle_ = 0;
  VrpProgram old_program_;
  VrpProgram new_program_;
  VrpCost old_cost_;
  VrpCost new_cost_;
  uint32_t old_addr_ = 0;
  uint32_t old_bytes_ = 0;
  uint32_t new_addr_ = 0;
  uint32_t new_bytes_ = 0;
  StateMigrator migrate_;
  SimTime first_fault_at_ = 0;
  SimTime detected_at_ = 0;
  bool rollback_pending_ = false;
  SimTime cutover_scheduled_at_ = 0;

  // Pristine pre-run MP snapshot for the packet in flight.
  std::array<uint8_t, 64> pending_mp_{};
  size_t pending_len_ = 0;
  bool have_pending_ = false;

  // Decision audit.
  bool audit_armed_ = false;
  uint32_t audit_handle_ = 0;
  std::vector<uint64_t> decisions_;
};

}  // namespace npr

#endif  // SRC_CORE_UPGRADE_H_
