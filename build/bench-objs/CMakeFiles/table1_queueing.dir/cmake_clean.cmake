file(REMOVE_RECURSE
  "../bench/table1_queueing"
  "../bench/table1_queueing.pdb"
  "CMakeFiles/table1_queueing.dir/table1_queueing.cc.o"
  "CMakeFiles/table1_queueing.dir/table1_queueing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
