# Empty compiler generated dependencies file for table1_queueing.
# This may be replaced when dependencies are built.
