file(REMOVE_RECURSE
  "../bench/micro_host"
  "../bench/micro_host.pdb"
  "CMakeFiles/micro_host.dir/micro_host.cc.o"
  "CMakeFiles/micro_host.dir/micro_host.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
