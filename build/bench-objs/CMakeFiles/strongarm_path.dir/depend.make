# Empty dependencies file for strongarm_path.
# This may be replaced when dependencies are built.
