file(REMOVE_RECURSE
  "../bench/strongarm_path"
  "../bench/strongarm_path.pdb"
  "CMakeFiles/strongarm_path.dir/strongarm_path.cc.o"
  "CMakeFiles/strongarm_path.dir/strongarm_path.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strongarm_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
