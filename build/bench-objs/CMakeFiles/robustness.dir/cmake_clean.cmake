file(REMOVE_RECURSE
  "../bench/robustness"
  "../bench/robustness.pdb"
  "CMakeFiles/robustness.dir/robustness.cc.o"
  "CMakeFiles/robustness.dir/robustness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
