# Empty dependencies file for expensive_forwarders.
# This may be replaced when dependencies are built.
