file(REMOVE_RECURSE
  "../bench/expensive_forwarders"
  "../bench/expensive_forwarders.pdb"
  "CMakeFiles/expensive_forwarders.dir/expensive_forwarders.cc.o"
  "CMakeFiles/expensive_forwarders.dir/expensive_forwarders.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expensive_forwarders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
