file(REMOVE_RECURSE
  "../bench/fig9_vrp_budget"
  "../bench/fig9_vrp_budget.pdb"
  "CMakeFiles/fig9_vrp_budget.dir/fig9_vrp_budget.cc.o"
  "CMakeFiles/fig9_vrp_budget.dir/fig9_vrp_budget.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_vrp_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
