# Empty dependencies file for fig9_vrp_budget.
# This may be replaced when dependencies are built.
