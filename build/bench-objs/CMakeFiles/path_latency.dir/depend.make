# Empty dependencies file for path_latency.
# This may be replaced when dependencies are built.
