file(REMOVE_RECURSE
  "../bench/path_latency"
  "../bench/path_latency.pdb"
  "CMakeFiles/path_latency.dir/path_latency.cc.o"
  "CMakeFiles/path_latency.dir/path_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
