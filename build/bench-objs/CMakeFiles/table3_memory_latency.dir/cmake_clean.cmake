file(REMOVE_RECURSE
  "../bench/table3_memory_latency"
  "../bench/table3_memory_latency.pdb"
  "CMakeFiles/table3_memory_latency.dir/table3_memory_latency.cc.o"
  "CMakeFiles/table3_memory_latency.dir/table3_memory_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_memory_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
