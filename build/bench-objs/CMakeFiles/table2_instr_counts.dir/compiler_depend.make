# Empty compiler generated dependencies file for table2_instr_counts.
# This may be replaced when dependencies are built.
