file(REMOVE_RECURSE
  "../bench/table2_instr_counts"
  "../bench/table2_instr_counts.pdb"
  "CMakeFiles/table2_instr_counts.dir/table2_instr_counts.cc.o"
  "CMakeFiles/table2_instr_counts.dir/table2_instr_counts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_instr_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
