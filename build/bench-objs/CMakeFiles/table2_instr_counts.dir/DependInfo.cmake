
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_instr_counts.cc" "bench-objs/CMakeFiles/table2_instr_counts.dir/table2_instr_counts.cc.o" "gcc" "bench-objs/CMakeFiles/table2_instr_counts.dir/table2_instr_counts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/npr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/npr_control.dir/DependInfo.cmake"
  "/root/repo/build/src/forwarders/CMakeFiles/npr_forwarders.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/npr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vrp/CMakeFiles/npr_vrp.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/npr_route.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/npr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ixp/CMakeFiles/npr_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/npr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/npr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
