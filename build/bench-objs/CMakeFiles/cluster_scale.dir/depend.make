# Empty dependencies file for cluster_scale.
# This may be replaced when dependencies are built.
