file(REMOVE_RECURSE
  "../bench/cluster_scale"
  "../bench/cluster_scale.pdb"
  "CMakeFiles/cluster_scale.dir/cluster_scale.cc.o"
  "CMakeFiles/cluster_scale.dir/cluster_scale.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
