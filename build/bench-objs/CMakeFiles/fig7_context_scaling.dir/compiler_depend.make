# Empty compiler generated dependencies file for fig7_context_scaling.
# This may be replaced when dependencies are built.
