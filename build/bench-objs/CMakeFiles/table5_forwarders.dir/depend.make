# Empty dependencies file for table5_forwarders.
# This may be replaced when dependencies are built.
