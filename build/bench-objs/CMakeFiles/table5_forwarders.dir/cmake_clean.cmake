file(REMOVE_RECURSE
  "../bench/table5_forwarders"
  "../bench/table5_forwarders.pdb"
  "CMakeFiles/table5_forwarders.dir/table5_forwarders.cc.o"
  "CMakeFiles/table5_forwarders.dir/table5_forwarders.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_forwarders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
