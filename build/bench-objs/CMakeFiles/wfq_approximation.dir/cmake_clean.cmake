file(REMOVE_RECURSE
  "../bench/wfq_approximation"
  "../bench/wfq_approximation.pdb"
  "CMakeFiles/wfq_approximation.dir/wfq_approximation.cc.o"
  "CMakeFiles/wfq_approximation.dir/wfq_approximation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfq_approximation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
