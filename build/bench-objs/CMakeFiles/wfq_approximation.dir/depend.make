# Empty dependencies file for wfq_approximation.
# This may be replaced when dependencies are built.
