file(REMOVE_RECURSE
  "../bench/ablation_dram_path"
  "../bench/ablation_dram_path.pdb"
  "CMakeFiles/ablation_dram_path.dir/ablation_dram_path.cc.o"
  "CMakeFiles/ablation_dram_path.dir/ablation_dram_path.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dram_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
