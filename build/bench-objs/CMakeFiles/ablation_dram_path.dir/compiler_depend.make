# Empty compiler generated dependencies file for ablation_dram_path.
# This may be replaced when dependencies are built.
