file(REMOVE_RECURSE
  "../bench/fig10_contention"
  "../bench/fig10_contention.pdb"
  "CMakeFiles/fig10_contention.dir/fig10_contention.cc.o"
  "CMakeFiles/fig10_contention.dir/fig10_contention.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
