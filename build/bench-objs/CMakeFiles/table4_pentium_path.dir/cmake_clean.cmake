file(REMOVE_RECURSE
  "../bench/table4_pentium_path"
  "../bench/table4_pentium_path.pdb"
  "CMakeFiles/table4_pentium_path.dir/table4_pentium_path.cc.o"
  "CMakeFiles/table4_pentium_path.dir/table4_pentium_path.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_pentium_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
