# Empty compiler generated dependencies file for table4_pentium_path.
# This may be replaced when dependencies are built.
