# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/ixp_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/route_test[1]_include.cmake")
include("/root/repo/build/tests/vrp_test[1]_include.cmake")
include("/root/repo/build/tests/forwarders_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/control_test[1]_include.cmake")
include("/root/repo/build/tests/router_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/qos_test[1]_include.cmake")
include("/root/repo/build/tests/stage_test[1]_include.cmake")
include("/root/repo/build/tests/icmp_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/vrp_characterization_test[1]_include.cmake")
include("/root/repo/build/tests/e2e_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
