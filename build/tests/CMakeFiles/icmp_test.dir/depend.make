# Empty dependencies file for icmp_test.
# This may be replaced when dependencies are built.
