file(REMOVE_RECURSE
  "CMakeFiles/vrp_characterization_test.dir/vrp_characterization_test.cc.o"
  "CMakeFiles/vrp_characterization_test.dir/vrp_characterization_test.cc.o.d"
  "vrp_characterization_test"
  "vrp_characterization_test.pdb"
  "vrp_characterization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrp_characterization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
