# Empty dependencies file for vrp_characterization_test.
# This may be replaced when dependencies are built.
