file(REMOVE_RECURSE
  "CMakeFiles/vrp_test.dir/vrp_test.cc.o"
  "CMakeFiles/vrp_test.dir/vrp_test.cc.o.d"
  "vrp_test"
  "vrp_test.pdb"
  "vrp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
