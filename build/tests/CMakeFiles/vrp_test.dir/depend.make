# Empty dependencies file for vrp_test.
# This may be replaced when dependencies are built.
