file(REMOVE_RECURSE
  "CMakeFiles/forwarders_test.dir/forwarders_test.cc.o"
  "CMakeFiles/forwarders_test.dir/forwarders_test.cc.o.d"
  "forwarders_test"
  "forwarders_test.pdb"
  "forwarders_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forwarders_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
