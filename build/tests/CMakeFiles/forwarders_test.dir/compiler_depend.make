# Empty compiler generated dependencies file for forwarders_test.
# This may be replaced when dependencies are built.
