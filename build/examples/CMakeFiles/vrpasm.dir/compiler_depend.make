# Empty compiler generated dependencies file for vrpasm.
# This may be replaced when dependencies are built.
