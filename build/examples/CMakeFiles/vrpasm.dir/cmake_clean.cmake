file(REMOVE_RECURSE
  "CMakeFiles/vrpasm.dir/vrpasm.cpp.o"
  "CMakeFiles/vrpasm.dir/vrpasm.cpp.o.d"
  "vrpasm"
  "vrpasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrpasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
