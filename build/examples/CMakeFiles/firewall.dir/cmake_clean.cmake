file(REMOVE_RECURSE
  "CMakeFiles/firewall.dir/firewall.cpp.o"
  "CMakeFiles/firewall.dir/firewall.cpp.o.d"
  "firewall"
  "firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
