# Empty compiler generated dependencies file for firewall.
# This may be replaced when dependencies are built.
