# Empty dependencies file for tcp_splice.
# This may be replaced when dependencies are built.
