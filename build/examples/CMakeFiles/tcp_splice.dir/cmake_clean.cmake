file(REMOVE_RECURSE
  "CMakeFiles/tcp_splice.dir/tcp_splice.cpp.o"
  "CMakeFiles/tcp_splice.dir/tcp_splice.cpp.o.d"
  "tcp_splice"
  "tcp_splice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_splice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
