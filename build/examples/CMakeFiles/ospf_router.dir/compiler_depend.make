# Empty compiler generated dependencies file for ospf_router.
# This may be replaced when dependencies are built.
