file(REMOVE_RECURSE
  "CMakeFiles/ospf_router.dir/ospf_router.cpp.o"
  "CMakeFiles/ospf_router.dir/ospf_router.cpp.o.d"
  "ospf_router"
  "ospf_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ospf_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
