# Empty compiler generated dependencies file for video_dropper.
# This may be replaced when dependencies are built.
