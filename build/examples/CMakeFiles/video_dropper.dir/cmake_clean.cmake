file(REMOVE_RECURSE
  "CMakeFiles/video_dropper.dir/video_dropper.cpp.o"
  "CMakeFiles/video_dropper.dir/video_dropper.cpp.o.d"
  "video_dropper"
  "video_dropper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_dropper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
