# Empty compiler generated dependencies file for npr_mem.
# This may be replaced when dependencies are built.
