file(REMOVE_RECURSE
  "CMakeFiles/npr_mem.dir/backing_store.cc.o"
  "CMakeFiles/npr_mem.dir/backing_store.cc.o.d"
  "CMakeFiles/npr_mem.dir/memory_channel.cc.o"
  "CMakeFiles/npr_mem.dir/memory_channel.cc.o.d"
  "libnpr_mem.a"
  "libnpr_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npr_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
