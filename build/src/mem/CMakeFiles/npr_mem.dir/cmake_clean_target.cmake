file(REMOVE_RECURSE
  "libnpr_mem.a"
)
