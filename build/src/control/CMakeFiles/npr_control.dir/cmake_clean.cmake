file(REMOVE_RECURSE
  "CMakeFiles/npr_control.dir/ospf_lite.cc.o"
  "CMakeFiles/npr_control.dir/ospf_lite.cc.o.d"
  "libnpr_control.a"
  "libnpr_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npr_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
