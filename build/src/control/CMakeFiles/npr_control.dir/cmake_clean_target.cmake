file(REMOVE_RECURSE
  "libnpr_control.a"
)
