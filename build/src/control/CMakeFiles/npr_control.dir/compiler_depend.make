# Empty compiler generated dependencies file for npr_control.
# This may be replaced when dependencies are built.
