file(REMOVE_RECURSE
  "libnpr_net.a"
)
