# Empty compiler generated dependencies file for npr_net.
# This may be replaced when dependencies are built.
