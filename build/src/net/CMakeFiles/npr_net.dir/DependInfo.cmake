
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/checksum.cc" "src/net/CMakeFiles/npr_net.dir/checksum.cc.o" "gcc" "src/net/CMakeFiles/npr_net.dir/checksum.cc.o.d"
  "/root/repo/src/net/ethernet.cc" "src/net/CMakeFiles/npr_net.dir/ethernet.cc.o" "gcc" "src/net/CMakeFiles/npr_net.dir/ethernet.cc.o.d"
  "/root/repo/src/net/icmp.cc" "src/net/CMakeFiles/npr_net.dir/icmp.cc.o" "gcc" "src/net/CMakeFiles/npr_net.dir/icmp.cc.o.d"
  "/root/repo/src/net/ipv4.cc" "src/net/CMakeFiles/npr_net.dir/ipv4.cc.o" "gcc" "src/net/CMakeFiles/npr_net.dir/ipv4.cc.o.d"
  "/root/repo/src/net/mac_port.cc" "src/net/CMakeFiles/npr_net.dir/mac_port.cc.o" "gcc" "src/net/CMakeFiles/npr_net.dir/mac_port.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/net/CMakeFiles/npr_net.dir/packet.cc.o" "gcc" "src/net/CMakeFiles/npr_net.dir/packet.cc.o.d"
  "/root/repo/src/net/pcap_writer.cc" "src/net/CMakeFiles/npr_net.dir/pcap_writer.cc.o" "gcc" "src/net/CMakeFiles/npr_net.dir/pcap_writer.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/net/CMakeFiles/npr_net.dir/tcp.cc.o" "gcc" "src/net/CMakeFiles/npr_net.dir/tcp.cc.o.d"
  "/root/repo/src/net/trace.cc" "src/net/CMakeFiles/npr_net.dir/trace.cc.o" "gcc" "src/net/CMakeFiles/npr_net.dir/trace.cc.o.d"
  "/root/repo/src/net/traffic_gen.cc" "src/net/CMakeFiles/npr_net.dir/traffic_gen.cc.o" "gcc" "src/net/CMakeFiles/npr_net.dir/traffic_gen.cc.o.d"
  "/root/repo/src/net/udp.cc" "src/net/CMakeFiles/npr_net.dir/udp.cc.o" "gcc" "src/net/CMakeFiles/npr_net.dir/udp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ixp/CMakeFiles/npr_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/npr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/npr_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
