file(REMOVE_RECURSE
  "CMakeFiles/npr_net.dir/checksum.cc.o"
  "CMakeFiles/npr_net.dir/checksum.cc.o.d"
  "CMakeFiles/npr_net.dir/ethernet.cc.o"
  "CMakeFiles/npr_net.dir/ethernet.cc.o.d"
  "CMakeFiles/npr_net.dir/icmp.cc.o"
  "CMakeFiles/npr_net.dir/icmp.cc.o.d"
  "CMakeFiles/npr_net.dir/ipv4.cc.o"
  "CMakeFiles/npr_net.dir/ipv4.cc.o.d"
  "CMakeFiles/npr_net.dir/mac_port.cc.o"
  "CMakeFiles/npr_net.dir/mac_port.cc.o.d"
  "CMakeFiles/npr_net.dir/packet.cc.o"
  "CMakeFiles/npr_net.dir/packet.cc.o.d"
  "CMakeFiles/npr_net.dir/pcap_writer.cc.o"
  "CMakeFiles/npr_net.dir/pcap_writer.cc.o.d"
  "CMakeFiles/npr_net.dir/tcp.cc.o"
  "CMakeFiles/npr_net.dir/tcp.cc.o.d"
  "CMakeFiles/npr_net.dir/trace.cc.o"
  "CMakeFiles/npr_net.dir/trace.cc.o.d"
  "CMakeFiles/npr_net.dir/traffic_gen.cc.o"
  "CMakeFiles/npr_net.dir/traffic_gen.cc.o.d"
  "CMakeFiles/npr_net.dir/udp.cc.o"
  "CMakeFiles/npr_net.dir/udp.cc.o.d"
  "libnpr_net.a"
  "libnpr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
