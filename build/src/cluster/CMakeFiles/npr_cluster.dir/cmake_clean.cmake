file(REMOVE_RECURSE
  "CMakeFiles/npr_cluster.dir/cluster_router.cc.o"
  "CMakeFiles/npr_cluster.dir/cluster_router.cc.o.d"
  "libnpr_cluster.a"
  "libnpr_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npr_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
