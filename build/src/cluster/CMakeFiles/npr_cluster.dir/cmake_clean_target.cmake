file(REMOVE_RECURSE
  "libnpr_cluster.a"
)
