# Empty compiler generated dependencies file for npr_cluster.
# This may be replaced when dependencies are built.
