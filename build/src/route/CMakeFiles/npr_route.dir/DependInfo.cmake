
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/route/cpe_trie.cc" "src/route/CMakeFiles/npr_route.dir/cpe_trie.cc.o" "gcc" "src/route/CMakeFiles/npr_route.dir/cpe_trie.cc.o.d"
  "/root/repo/src/route/prefix.cc" "src/route/CMakeFiles/npr_route.dir/prefix.cc.o" "gcc" "src/route/CMakeFiles/npr_route.dir/prefix.cc.o.d"
  "/root/repo/src/route/route_cache.cc" "src/route/CMakeFiles/npr_route.dir/route_cache.cc.o" "gcc" "src/route/CMakeFiles/npr_route.dir/route_cache.cc.o.d"
  "/root/repo/src/route/route_loader.cc" "src/route/CMakeFiles/npr_route.dir/route_loader.cc.o" "gcc" "src/route/CMakeFiles/npr_route.dir/route_loader.cc.o.d"
  "/root/repo/src/route/route_table.cc" "src/route/CMakeFiles/npr_route.dir/route_table.cc.o" "gcc" "src/route/CMakeFiles/npr_route.dir/route_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/npr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ixp/CMakeFiles/npr_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/npr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/npr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
