# Empty dependencies file for npr_route.
# This may be replaced when dependencies are built.
