file(REMOVE_RECURSE
  "CMakeFiles/npr_route.dir/cpe_trie.cc.o"
  "CMakeFiles/npr_route.dir/cpe_trie.cc.o.d"
  "CMakeFiles/npr_route.dir/prefix.cc.o"
  "CMakeFiles/npr_route.dir/prefix.cc.o.d"
  "CMakeFiles/npr_route.dir/route_cache.cc.o"
  "CMakeFiles/npr_route.dir/route_cache.cc.o.d"
  "CMakeFiles/npr_route.dir/route_loader.cc.o"
  "CMakeFiles/npr_route.dir/route_loader.cc.o.d"
  "CMakeFiles/npr_route.dir/route_table.cc.o"
  "CMakeFiles/npr_route.dir/route_table.cc.o.d"
  "libnpr_route.a"
  "libnpr_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npr_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
