file(REMOVE_RECURSE
  "libnpr_route.a"
)
