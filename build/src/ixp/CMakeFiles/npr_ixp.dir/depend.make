# Empty dependencies file for npr_ixp.
# This may be replaced when dependencies are built.
