file(REMOVE_RECURSE
  "CMakeFiles/npr_ixp.dir/hw_config.cc.o"
  "CMakeFiles/npr_ixp.dir/hw_config.cc.o.d"
  "CMakeFiles/npr_ixp.dir/hw_mutex.cc.o"
  "CMakeFiles/npr_ixp.dir/hw_mutex.cc.o.d"
  "CMakeFiles/npr_ixp.dir/ixp1200.cc.o"
  "CMakeFiles/npr_ixp.dir/ixp1200.cc.o.d"
  "CMakeFiles/npr_ixp.dir/microengine.cc.o"
  "CMakeFiles/npr_ixp.dir/microengine.cc.o.d"
  "CMakeFiles/npr_ixp.dir/soft_core.cc.o"
  "CMakeFiles/npr_ixp.dir/soft_core.cc.o.d"
  "CMakeFiles/npr_ixp.dir/token_ring.cc.o"
  "CMakeFiles/npr_ixp.dir/token_ring.cc.o.d"
  "libnpr_ixp.a"
  "libnpr_ixp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npr_ixp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
