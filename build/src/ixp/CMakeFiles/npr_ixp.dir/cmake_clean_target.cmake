file(REMOVE_RECURSE
  "libnpr_ixp.a"
)
