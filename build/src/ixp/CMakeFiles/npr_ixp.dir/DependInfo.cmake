
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ixp/hw_config.cc" "src/ixp/CMakeFiles/npr_ixp.dir/hw_config.cc.o" "gcc" "src/ixp/CMakeFiles/npr_ixp.dir/hw_config.cc.o.d"
  "/root/repo/src/ixp/hw_mutex.cc" "src/ixp/CMakeFiles/npr_ixp.dir/hw_mutex.cc.o" "gcc" "src/ixp/CMakeFiles/npr_ixp.dir/hw_mutex.cc.o.d"
  "/root/repo/src/ixp/ixp1200.cc" "src/ixp/CMakeFiles/npr_ixp.dir/ixp1200.cc.o" "gcc" "src/ixp/CMakeFiles/npr_ixp.dir/ixp1200.cc.o.d"
  "/root/repo/src/ixp/microengine.cc" "src/ixp/CMakeFiles/npr_ixp.dir/microengine.cc.o" "gcc" "src/ixp/CMakeFiles/npr_ixp.dir/microengine.cc.o.d"
  "/root/repo/src/ixp/soft_core.cc" "src/ixp/CMakeFiles/npr_ixp.dir/soft_core.cc.o" "gcc" "src/ixp/CMakeFiles/npr_ixp.dir/soft_core.cc.o.d"
  "/root/repo/src/ixp/token_ring.cc" "src/ixp/CMakeFiles/npr_ixp.dir/token_ring.cc.o" "gcc" "src/ixp/CMakeFiles/npr_ixp.dir/token_ring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/npr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/npr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
