file(REMOVE_RECURSE
  "CMakeFiles/npr_vrp.dir/assembler.cc.o"
  "CMakeFiles/npr_vrp.dir/assembler.cc.o.d"
  "CMakeFiles/npr_vrp.dir/budget.cc.o"
  "CMakeFiles/npr_vrp.dir/budget.cc.o.d"
  "CMakeFiles/npr_vrp.dir/interpreter.cc.o"
  "CMakeFiles/npr_vrp.dir/interpreter.cc.o.d"
  "CMakeFiles/npr_vrp.dir/isa.cc.o"
  "CMakeFiles/npr_vrp.dir/isa.cc.o.d"
  "CMakeFiles/npr_vrp.dir/istore_layout.cc.o"
  "CMakeFiles/npr_vrp.dir/istore_layout.cc.o.d"
  "CMakeFiles/npr_vrp.dir/verifier.cc.o"
  "CMakeFiles/npr_vrp.dir/verifier.cc.o.d"
  "libnpr_vrp.a"
  "libnpr_vrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npr_vrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
