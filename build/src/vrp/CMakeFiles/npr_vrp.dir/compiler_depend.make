# Empty compiler generated dependencies file for npr_vrp.
# This may be replaced when dependencies are built.
