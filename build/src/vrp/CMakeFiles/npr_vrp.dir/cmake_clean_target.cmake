file(REMOVE_RECURSE
  "libnpr_vrp.a"
)
