
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vrp/assembler.cc" "src/vrp/CMakeFiles/npr_vrp.dir/assembler.cc.o" "gcc" "src/vrp/CMakeFiles/npr_vrp.dir/assembler.cc.o.d"
  "/root/repo/src/vrp/budget.cc" "src/vrp/CMakeFiles/npr_vrp.dir/budget.cc.o" "gcc" "src/vrp/CMakeFiles/npr_vrp.dir/budget.cc.o.d"
  "/root/repo/src/vrp/interpreter.cc" "src/vrp/CMakeFiles/npr_vrp.dir/interpreter.cc.o" "gcc" "src/vrp/CMakeFiles/npr_vrp.dir/interpreter.cc.o.d"
  "/root/repo/src/vrp/isa.cc" "src/vrp/CMakeFiles/npr_vrp.dir/isa.cc.o" "gcc" "src/vrp/CMakeFiles/npr_vrp.dir/isa.cc.o.d"
  "/root/repo/src/vrp/istore_layout.cc" "src/vrp/CMakeFiles/npr_vrp.dir/istore_layout.cc.o" "gcc" "src/vrp/CMakeFiles/npr_vrp.dir/istore_layout.cc.o.d"
  "/root/repo/src/vrp/verifier.cc" "src/vrp/CMakeFiles/npr_vrp.dir/verifier.cc.o" "gcc" "src/vrp/CMakeFiles/npr_vrp.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ixp/CMakeFiles/npr_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/npr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/npr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
