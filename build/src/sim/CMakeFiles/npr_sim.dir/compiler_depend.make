# Empty compiler generated dependencies file for npr_sim.
# This may be replaced when dependencies are built.
