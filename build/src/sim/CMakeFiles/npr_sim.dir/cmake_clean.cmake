file(REMOVE_RECURSE
  "CMakeFiles/npr_sim.dir/event_queue.cc.o"
  "CMakeFiles/npr_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/npr_sim.dir/log.cc.o"
  "CMakeFiles/npr_sim.dir/log.cc.o.d"
  "CMakeFiles/npr_sim.dir/random.cc.o"
  "CMakeFiles/npr_sim.dir/random.cc.o.d"
  "CMakeFiles/npr_sim.dir/stats.cc.o"
  "CMakeFiles/npr_sim.dir/stats.cc.o.d"
  "libnpr_sim.a"
  "libnpr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
