file(REMOVE_RECURSE
  "libnpr_sim.a"
)
