# Empty dependencies file for npr_core.
# This may be replaced when dependencies are built.
