file(REMOVE_RECURSE
  "CMakeFiles/npr_core.dir/admission.cc.o"
  "CMakeFiles/npr_core.dir/admission.cc.o.d"
  "CMakeFiles/npr_core.dir/buffer_allocator.cc.o"
  "CMakeFiles/npr_core.dir/buffer_allocator.cc.o.d"
  "CMakeFiles/npr_core.dir/classifier.cc.o"
  "CMakeFiles/npr_core.dir/classifier.cc.o.d"
  "CMakeFiles/npr_core.dir/flow_table.cc.o"
  "CMakeFiles/npr_core.dir/flow_table.cc.o.d"
  "CMakeFiles/npr_core.dir/input_stage.cc.o"
  "CMakeFiles/npr_core.dir/input_stage.cc.o.d"
  "CMakeFiles/npr_core.dir/output_stage.cc.o"
  "CMakeFiles/npr_core.dir/output_stage.cc.o.d"
  "CMakeFiles/npr_core.dir/packet_queue.cc.o"
  "CMakeFiles/npr_core.dir/packet_queue.cc.o.d"
  "CMakeFiles/npr_core.dir/pentium_host.cc.o"
  "CMakeFiles/npr_core.dir/pentium_host.cc.o.d"
  "CMakeFiles/npr_core.dir/prop_share.cc.o"
  "CMakeFiles/npr_core.dir/prop_share.cc.o.d"
  "CMakeFiles/npr_core.dir/queue_plan.cc.o"
  "CMakeFiles/npr_core.dir/queue_plan.cc.o.d"
  "CMakeFiles/npr_core.dir/router.cc.o"
  "CMakeFiles/npr_core.dir/router.cc.o.d"
  "CMakeFiles/npr_core.dir/strongarm_bridge.cc.o"
  "CMakeFiles/npr_core.dir/strongarm_bridge.cc.o.d"
  "libnpr_core.a"
  "libnpr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
