
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admission.cc" "src/core/CMakeFiles/npr_core.dir/admission.cc.o" "gcc" "src/core/CMakeFiles/npr_core.dir/admission.cc.o.d"
  "/root/repo/src/core/buffer_allocator.cc" "src/core/CMakeFiles/npr_core.dir/buffer_allocator.cc.o" "gcc" "src/core/CMakeFiles/npr_core.dir/buffer_allocator.cc.o.d"
  "/root/repo/src/core/classifier.cc" "src/core/CMakeFiles/npr_core.dir/classifier.cc.o" "gcc" "src/core/CMakeFiles/npr_core.dir/classifier.cc.o.d"
  "/root/repo/src/core/flow_table.cc" "src/core/CMakeFiles/npr_core.dir/flow_table.cc.o" "gcc" "src/core/CMakeFiles/npr_core.dir/flow_table.cc.o.d"
  "/root/repo/src/core/input_stage.cc" "src/core/CMakeFiles/npr_core.dir/input_stage.cc.o" "gcc" "src/core/CMakeFiles/npr_core.dir/input_stage.cc.o.d"
  "/root/repo/src/core/output_stage.cc" "src/core/CMakeFiles/npr_core.dir/output_stage.cc.o" "gcc" "src/core/CMakeFiles/npr_core.dir/output_stage.cc.o.d"
  "/root/repo/src/core/packet_queue.cc" "src/core/CMakeFiles/npr_core.dir/packet_queue.cc.o" "gcc" "src/core/CMakeFiles/npr_core.dir/packet_queue.cc.o.d"
  "/root/repo/src/core/pentium_host.cc" "src/core/CMakeFiles/npr_core.dir/pentium_host.cc.o" "gcc" "src/core/CMakeFiles/npr_core.dir/pentium_host.cc.o.d"
  "/root/repo/src/core/prop_share.cc" "src/core/CMakeFiles/npr_core.dir/prop_share.cc.o" "gcc" "src/core/CMakeFiles/npr_core.dir/prop_share.cc.o.d"
  "/root/repo/src/core/queue_plan.cc" "src/core/CMakeFiles/npr_core.dir/queue_plan.cc.o" "gcc" "src/core/CMakeFiles/npr_core.dir/queue_plan.cc.o.d"
  "/root/repo/src/core/router.cc" "src/core/CMakeFiles/npr_core.dir/router.cc.o" "gcc" "src/core/CMakeFiles/npr_core.dir/router.cc.o.d"
  "/root/repo/src/core/strongarm_bridge.cc" "src/core/CMakeFiles/npr_core.dir/strongarm_bridge.cc.o" "gcc" "src/core/CMakeFiles/npr_core.dir/strongarm_bridge.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vrp/CMakeFiles/npr_vrp.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/npr_route.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/npr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ixp/CMakeFiles/npr_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/npr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/npr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
