file(REMOVE_RECURSE
  "libnpr_core.a"
)
