file(REMOVE_RECURSE
  "CMakeFiles/npr_forwarders.dir/control.cc.o"
  "CMakeFiles/npr_forwarders.dir/control.cc.o.d"
  "CMakeFiles/npr_forwarders.dir/native.cc.o"
  "CMakeFiles/npr_forwarders.dir/native.cc.o.d"
  "CMakeFiles/npr_forwarders.dir/vrp_programs.cc.o"
  "CMakeFiles/npr_forwarders.dir/vrp_programs.cc.o.d"
  "libnpr_forwarders.a"
  "libnpr_forwarders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npr_forwarders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
