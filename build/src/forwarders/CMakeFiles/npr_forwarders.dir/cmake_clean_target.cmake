file(REMOVE_RECURSE
  "libnpr_forwarders.a"
)
