# Empty compiler generated dependencies file for npr_forwarders.
# This may be replaced when dependencies are built.
