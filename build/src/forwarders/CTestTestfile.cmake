# CMake generated Testfile for 
# Source directory: /root/repo/src/forwarders
# Build directory: /root/repo/build/src/forwarders
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
