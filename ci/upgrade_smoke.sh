#!/usr/bin/env bash
# Upgrade smoke test: a Release build must perform a hitless in-service
# upgrade — zero conforming loss, bit-identical decisions — and roll back a
# byzantine image within budget.
#
#   ci/upgrade_smoke.sh [build-dir]     (default: build-perf)
#
# Runs bench/upgrade under a fixed seed matrix. The bench itself exits
# non-zero if the hitless run loses or reorders a single conforming packet,
# if the byzantine image is not rolled back to a bit-identical stream, or
# if the 8-node rolling upgrade ends version-inconsistent or raises a
# node-death suspicion. This script additionally holds the rollback
# MTTD/MTTR rows in BENCH_upgrade.json to their budgets and requires the
# zero-conforming-loss and delivery-ratio rows to be exact.
#
# It also cross-checks the hitless-upgrade summary rows that bench/robustness
# emits as its experiment 5 (see ci/chaos_smoke.sh for the rest of that
# bench's budgets).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-perf}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$(nproc)" --target upgrade --target robustness

out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT
cd "$out_dir"

# Fixed seed matrix, default seed last so the JSON checked below comes from
# the canonical run. Every seed must exit 0 (the bench fails itself on a
# lost conforming packet, a surviving byzantine image, or an inconsistent
# cluster).
for seed in 0x5eed1 0x5eed2 0xfa017; do
  echo "--- upgrade seed $seed ---"
  "$build_dir/bench/upgrade" "$seed"
done

echo "--- robustness (experiment 5 summary rows) ---"
"$build_dir/bench/robustness"

python3 - "$out_dir" <<'EOF'
import json
import sys

out_dir = sys.argv[1]
failures = []

# Rollback budgets in microseconds: MTTD is bounded by the soak evidence
# bar (soak_min_packets at the bench traffic rate) plus one probe period;
# MTTR adds the revert, which runs in the same scheduled event.
BUDGETS_US = {
    "upgrade: rollback MTTD": 400.0,
    "upgrade: rollback MTTR": 500.0,
}
# Hitless contract rows that must be exact.
EXACT_ROWS = {
    "upgrade: conforming packets lost (hitless)": 0.0,
    "upgrade: decision-stream divergences (hitless)": 0.0,
    "upgrade: shadow divergence rate": 0.0,
    "upgrade: post-rollback stream bit-identical": 1.0,
    "upgrade: rolling nodes promoted (lossy channel)": 8.0,
    "upgrade: rolling delivery ratio vs no-upgrade run": 1.0,
    "upgrade: rolling version-consistent under full chaos": 1.0,
    "upgrade: suspects raised during rolling upgrades": 0.0,
}

with open(f"{out_dir}/BENCH_upgrade.json") as f:
    upgrade = json.load(f)
rows = {row["label"]: row for row in upgrade["rows"]}

for label, budget in BUDGETS_US.items():
    row = rows.get(label)
    if row is None:
        failures.append(f"row {label!r} missing")
    elif row["measured"] <= 0:
        failures.append(f"{label}: no rollback measured")
    elif row["measured"] > budget:
        failures.append(
            f"{label}: {row['measured']:.1f} us over budget {budget:.1f} us")

for label, want in EXACT_ROWS.items():
    row = rows.get(label)
    if row is None:
        failures.append(f"row {label!r} missing")
    elif row["measured"] != want:
        failures.append(f"{label}: {row['measured']} != {want}")

# Experiment 5 summary rows in the robustness suite must agree.
SUMMARY_ROWS = {
    "upgrade: conforming packets lost (in-service)": 0.0,
    "upgrade: hitless run bit-identical to control": 1.0,
    "upgrade: byzantine image rolled back bit-identically": 1.0,
}
with open(f"{out_dir}/BENCH_robustness.json") as f:
    robustness = json.load(f)
rrows = {row["label"]: row for row in robustness["rows"]}
for label, want in SUMMARY_ROWS.items():
    row = rrows.get(label)
    if row is None:
        failures.append(f"robustness row {label!r} missing")
    elif row["measured"] != want:
        failures.append(f"robustness {label}: {row['measured']} != {want}")

if failures:
    print("upgrade smoke FAILED:")
    for f in failures:
        print("  -", f)
    sys.exit(1)
mttr = rows["upgrade: rollback MTTR"]["measured"]
print("upgrade smoke OK: zero conforming loss, bit-identical hitless and "
      f"post-rollback streams, rollback MTTR {mttr:.1f} us within budget, "
      "8/8 rolling promotion with zero suspicions")
EOF
