#!/usr/bin/env bash
# Line-coverage gate over the test suite.
#
#   ci/coverage.sh [build-dir]     (default: build-cov)
#
# Builds with -DNPR_COVERAGE=ON (gcc --coverage), runs ctest, then walks the
# accumulated .gcda counters with `gcov --json-format` (no gcovr/lcov needed)
# and enforces two floors:
#   1. src/obs/ — the observability layer must stay >= 90% line coverage
#      (it is the evidence everything else relies on when something breaks);
#   2. src/ overall — a checked-in no-regression floor for the whole tree.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-cov}"

cmake -B "$build_dir" -S "$repo_root" -DNPR_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" -j "$(nproc)" --output-on-failure >/dev/null

python3 - "$repo_root" "$build_dir" <<'EOF'
import collections
import glob
import gzip
import json
import os
import subprocess
import sys
import tempfile

repo_root, build_dir = sys.argv[1], sys.argv[2]

OBS_FLOOR_PCT = 90.0    # src/obs/: the layer this gate exists for
REPO_FLOOR_PCT = 80.0   # src/ overall: no-regression floor

# Walk every object's counters, test and bench executables included: inline
# functions are COMDAT-folded, so a header inline's counts land in whichever
# TU's copy the linker kept — often the test object. Lines are attributed by
# *source* path below, so only src/ code is measured either way.
gcda = sorted(glob.glob(f"{build_dir}/**/*.gcda", recursive=True))
if not gcda:
    sys.exit(f"coverage: no .gcda under {build_dir} (did ctest run?)")

# line -> hit, aggregated across every object that compiled the file.
hits = collections.defaultdict(lambda: collections.defaultdict(bool))
with tempfile.TemporaryDirectory() as tmp:
    for g in gcda:
        subprocess.run(["gcov", "--json-format", g], cwd=tmp, check=True,
                       stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        for out in glob.glob(f"{tmp}/*.gcov.json.gz"):
            with gzip.open(out, "rt") as f:
                data = json.load(f)
            for fi in data.get("files", []):
                path = os.path.normpath(os.path.join(repo_root, fi["file"]))
                rel = os.path.relpath(path, repo_root)
                if rel.startswith(".."):  # system/third-party headers
                    continue
                if not rel.startswith("src/"):
                    continue
                for line in fi.get("lines", []):
                    hits[rel][line["line_number"]] |= line["count"] > 0
            os.remove(out)

def cover(prefix):
    total = hit = 0
    files = {}
    for rel, lines in sorted(hits.items()):
        if not rel.startswith(prefix):
            continue
        t, h = len(lines), sum(lines.values())
        total += t
        hit += h
        files[rel] = (h, t)
    return (100.0 * hit / total if total else 0.0), files

obs_pct, obs_files = cover("src/obs/")
repo_pct, _ = cover("src/")

print(f"coverage: src/obs {obs_pct:.1f}% (floor {OBS_FLOOR_PCT:.0f}%), "
      f"src overall {repo_pct:.1f}% (floor {REPO_FLOOR_PCT:.0f}%)")
for rel, (h, t) in sorted(obs_files.items()):
    print(f"  {rel}: {100.0 * h / t:.1f}% ({h}/{t} lines)")

failures = []
if obs_pct < OBS_FLOOR_PCT:
    failures.append(f"src/obs line coverage {obs_pct:.1f}% below floor {OBS_FLOOR_PCT:.0f}%")
if repo_pct < REPO_FLOOR_PCT:
    failures.append(f"src overall coverage {repo_pct:.1f}% below floor {REPO_FLOOR_PCT:.0f}%")
if failures:
    print("coverage FAILED:")
    for f in failures:
        print("  -", f)
    sys.exit(1)
print("coverage OK")
EOF
