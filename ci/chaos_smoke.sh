#!/usr/bin/env bash
# Chaos smoke test: a Release build must survive every shipped fault plan
# AND self-heal within its repair budgets.
#
#   ci/chaos_smoke.sh [build-dir]     (default: build-perf)
#
# Runs bench/fault_chaos under a fixed seed matrix. The bench itself exits
# non-zero on a permanent stall, a post-recovery invariant violation, or a
# fault class that never recovered; this script additionally holds the
# MTTD/MTTR rows in BENCH_fault_chaos.json to their budgets and requires
# the path-A rate after a chaos burst to be within 5% of fault-free.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-perf}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$(nproc)" --target fault_chaos

out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT
cd "$out_dir"

# Fixed seed matrix: alternates first, the default seed last so the JSON
# checked below comes from the canonical run. Every seed must exit 0 (the
# bench fails itself on permanent stalls, invariant violations after
# recovery, or a fault class that never recovered).
for seed in 0x5eed1 0x5eed2 0xfa017; do
  echo "--- fault_chaos seed $seed ---"
  "$build_dir/bench/fault_chaos" "$seed"
done

python3 - "$out_dir" <<'EOF'
import json
import sys

out_dir = sys.argv[1]
failures = []

# MTTR/MTTD budgets in microseconds, per fault class. These are the
# HealthConfig deadlines plus watchdog granularity (tokens, contexts) or
# the injected hang length (Pentium); see docs/health.md.
BUDGETS_US = {
    "recovery: token regen MTTD": 300.0,
    "recovery: token regen MTTR": 1000.0,
    "recovery: context restore MTTD": 700.0,
    "recovery: context restore MTTR": 2000.0,
    "recovery: pentium degrade MTTD": 400.0,
    "recovery: pentium degrade MTTR": 2500.0,
}
RATIO_ROW = "recovery: path-A rate ratio after chaos"
RATIO_FLOOR = 0.95

with open(f"{out_dir}/BENCH_fault_chaos.json") as f:
    chaos = json.load(f)
rows = {row["label"]: row for row in chaos["rows"]}

for label, budget in BUDGETS_US.items():
    row = rows.get(label)
    if row is None:
        failures.append(f"row {label!r} missing")
    elif row["measured"] <= 0:
        failures.append(f"{label}: no recoveries measured")
    elif row["measured"] > budget:
        failures.append(
            f"{label}: {row['measured']:.1f} us over budget {budget:.1f} us")

ratio = rows.get(RATIO_ROW)
if ratio is None:
    failures.append(f"row {RATIO_ROW!r} missing")
elif ratio["measured"] < RATIO_FLOOR:
    failures.append(
        f"{RATIO_ROW}: {ratio['measured']:.3f} below floor {RATIO_FLOOR}")

if failures:
    print("chaos smoke FAILED:")
    for f in failures:
        print("  -", f)
    sys.exit(1)
print("chaos smoke OK: all fault classes recovered within budget, "
      f"path-A ratio {ratio['measured']:.3f} >= {RATIO_FLOOR}")
EOF
