#!/usr/bin/env bash
# Chaos smoke test: a Release build must survive every shipped fault plan
# AND self-heal within its repair budgets.
#
#   ci/chaos_smoke.sh [build-dir]     (default: build-perf)
#
# Runs bench/fault_chaos under a fixed seed matrix. The bench itself exits
# non-zero on a permanent stall, a post-recovery invariant violation, or a
# fault class that never recovered; this script additionally holds the
# MTTD/MTTR rows in BENCH_fault_chaos.json to their budgets and requires
# the path-A rate after a chaos burst to be within 5% of fault-free.
#
# It also runs bench/robustness and holds the overload-governor rows in
# BENCH_robustness.json to the graceful-degradation budgets: conforming
# goodput >= 0.9x fault-free under every adversarial mode, control-plane
# delivery at exactly 100% with zero control frames shed, drop attribution
# reconciled, and zero spurious reconvergences in the flooded 8-node
# cluster (see docs/overload.md).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-perf}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$(nproc)" --target fault_chaos --target robustness

out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT
cd "$out_dir"

# Fixed seed matrix: alternates first, the default seed last so the JSON
# checked below comes from the canonical run. Every seed must exit 0 (the
# bench fails itself on permanent stalls, invariant violations after
# recovery, or a fault class that never recovered).
for seed in 0x5eed1 0x5eed2 0xfa017; do
  echo "--- fault_chaos seed $seed ---"
  "$build_dir/bench/fault_chaos" "$seed"
done

echo "--- robustness (overload governor rows) ---"
"$build_dir/bench/robustness"

python3 - "$out_dir" <<'EOF'
import json
import sys

out_dir = sys.argv[1]
failures = []

# MTTR/MTTD budgets in microseconds, per fault class. These are the
# HealthConfig deadlines plus watchdog granularity (tokens, contexts) or
# the injected hang length (Pentium); see docs/health.md.
BUDGETS_US = {
    "recovery: token regen MTTD": 300.0,
    "recovery: token regen MTTR": 1000.0,
    "recovery: context restore MTTD": 700.0,
    "recovery: context restore MTTR": 2000.0,
    "recovery: pentium degrade MTTD": 400.0,
    "recovery: pentium degrade MTTR": 2500.0,
}
RATIO_ROW = "recovery: path-A rate ratio after chaos"
RATIO_FLOOR = 0.95

with open(f"{out_dir}/BENCH_fault_chaos.json") as f:
    chaos = json.load(f)
rows = {row["label"]: row for row in chaos["rows"]}

for label, budget in BUDGETS_US.items():
    row = rows.get(label)
    if row is None:
        failures.append(f"row {label!r} missing")
    elif row["measured"] <= 0:
        failures.append(f"{label}: no recoveries measured")
    elif row["measured"] > budget:
        failures.append(
            f"{label}: {row['measured']:.1f} us over budget {budget:.1f} us")

ratio = rows.get(RATIO_ROW)
if ratio is None:
    failures.append(f"row {RATIO_ROW!r} missing")
elif ratio["measured"] < RATIO_FLOOR:
    failures.append(
        f"{RATIO_ROW}: {ratio['measured']:.3f} below floor {RATIO_FLOOR}")

# Overload-governor budgets (BENCH_robustness.json): graceful degradation
# under every adversarial mode, a control plane that is never silenced, and
# a flooded cluster that never mistakes overload for node death.
GOODPUT_FLOOR = 0.9
GOODPUT_ROWS = [
    f"overload: conforming goodput ratio ({mode})"
    for mode in ("min-size flood", "elephant flows", "on/off burst", "flow churn")
]
EXACT_ROWS = {
    "overload: control delivery under flood": 100.0,
    "overload: control frames shed by governor": 0.0,
    "overload: drop attribution reconciled": 1.0,
    "overload: spurious reconvergences under flood": 0.0,
    "overload: suspects raised under flood": 0.0,
    "overload: nodes up after flood": 8.0,
}

with open(f"{out_dir}/BENCH_robustness.json") as f:
    robustness = json.load(f)
orows = {row["label"]: row for row in robustness["rows"]}

for label in GOODPUT_ROWS:
    row = orows.get(label)
    if row is None:
        failures.append(f"row {label!r} missing")
    elif row["measured"] < GOODPUT_FLOOR:
        failures.append(
            f"{label}: {row['measured']:.3f} below floor {GOODPUT_FLOOR}")

for label, want in EXACT_ROWS.items():
    row = orows.get(label)
    if row is None:
        failures.append(f"row {label!r} missing")
    elif row["measured"] != want:
        failures.append(f"{label}: {row['measured']} != {want}")

if failures:
    print("chaos smoke FAILED:")
    for f in failures:
        print("  -", f)
    sys.exit(1)
print("chaos smoke OK: all fault classes recovered within budget, "
      f"path-A ratio {ratio['measured']:.3f} >= {RATIO_FLOOR}, "
      "overload rows within budget (goodput >= "
      f"{GOODPUT_FLOOR}, control 100%, zero spurious reconvergences)")
EOF
