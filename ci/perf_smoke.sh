#!/usr/bin/env bash
# Performance smoke test: a Release build must still reproduce Table 1
# within its tolerance bands and push simulation events at full speed.
#
#   ci/perf_smoke.sh [build-dir]     (default: build-perf)
#
# Checks, via the BENCH_*.json files the benches emit:
#   1. every bench/table1_queueing row within +/-15% of the paper value
#      (the repo's own EXPERIMENTS.md bands are tighter; this is a smoke
#      test, not the acceptance run);
#   2. bench/sim_core event-core throughput above checked-in floors,
#      including the sharded-engine rows (barrier overhead regression);
#   3. bench/cluster_scale's sharded section: bit-identical across thread
#      counts always, and — only on hosts with enough cores — the parallel
#      speedup above a floor;
#   4. heap allocations per run ("allocs", counted by bench/alloc_count.cc)
#      within 10% of the committed baseline — the pooled data path made the
#      steady state allocation-free, and this keeps it that way.
#
# The floors are ~1/3 of the development-box numbers (docs/perf.md) to
# leave room for slower CI machines while still catching a regression to
# the old priority-queue core (which would land well below them).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-perf}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$(nproc)" --target table1_queueing sim_core cluster_scale

out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT
cd "$out_dir"

# The sharded thread ladder tops out at the host's core count (capped at 8):
# oversubscribed workers can't demonstrate speedup, only determinism.
cores="$(nproc)"
threads=$(( cores > 8 ? 8 : cores ))
"$build_dir/bench/sim_core"
"$build_dir/bench/table1_queueing"
"$build_dir/bench/cluster_scale" "--threads=$threads"

# The observability layer is compiled in unless the build was configured
# with -DNPR_OBS=OFF; only then are the latency sections legitimately absent.
obs_enabled=1
if grep -q "^NPR_OBS:BOOL=OFF" "$build_dir/CMakeCache.txt"; then
  obs_enabled=0
fi

python3 - "$out_dir" "$obs_enabled" "$threads" "$repo_root" <<'EOF'
import json
import sys

out_dir = sys.argv[1]
obs_enabled = sys.argv[2] == "1"
sharded_threads = int(sys.argv[3])
repo_root = sys.argv[4]
failures = []

# --- Table 1: every row within +/-15% of the paper value ---
TABLE1_BAND_PCT = 15.0
with open(f"{out_dir}/BENCH_table1_queueing.json") as f:
    table1 = json.load(f)
for row in table1["rows"]:
    if abs(row["delta_pct"]) > TABLE1_BAND_PCT:
        failures.append(
            f"table1 row {row['label']!r}: measured {row['measured']:.3f} "
            f"{row['unit']} vs paper {row['paper']:.3f} "
            f"({row['delta_pct']:+.1f}%, band +/-{TABLE1_BAND_PCT:.0f}%)")

# --- event core: throughput floors, in M events/sec ---
CORE_FLOORS_MEV = {
    "self-rescheduling fixed deltas (hot path)": 15.0,
    "same-instant fan-out bursts of 32": 15.0,
    "coroutine suspend/resume": 15.0,
    "mixed wheel levels + far-future heap": 8.0,
    # Sharded rows: a single shard behind the window barrier must stay close
    # to the bare hot path, and windowing 8 shards on one thread must not
    # collapse throughput (barrier cost is per-window, not per-event).
    "sharded engines x1 aggregate": 12.0,
    "sharded engines x8, 1 thread": 10.0,
}
with open(f"{out_dir}/BENCH_sim_core.json") as f:
    core = json.load(f)
rates = {row["label"]: row["measured"] for row in core["rows"]}
for label, floor in CORE_FLOORS_MEV.items():
    measured = rates.get(label)
    if measured is None:
        failures.append(f"sim_core row {label!r} missing")
    elif measured < floor:
        failures.append(
            f"sim_core {label!r}: {measured:.1f} Mev/s below floor {floor:.1f}")

# --- observability: per-path latency percentiles (src/obs) ---
# table1's line-rate run attaches an Observer; the JSON must carry a sane
# path-A distribution: every forwarded packet counted, percentiles ordered.
if obs_enabled:
    paths = {row["label"]: row for row in table1.get("path_latency", [])}
    if "path_A" not in paths:
        failures.append("table1 path_latency missing path_A (observer not attached?)")
    for label, row in sorted(paths.items()):
        if row["count"] <= 0:
            failures.append(f"path_latency {label!r}: empty distribution")
        if not (0 < row["p50_ns"] <= row["p95_ns"] <= row["p99_ns"]):
            failures.append(
                f"path_latency {label!r}: percentiles not monotone "
                f"(p50={row['p50_ns']}, p95={row['p95_ns']}, p99={row['p99_ns']})")
        if row["max_ns"] <= 0:
            failures.append(f"path_latency {label!r}: max_ns {row['max_ns']} not positive")

# --- sharded cluster: determinism always, speedup when cores allow ---
# The bench already exits non-zero on a fingerprint divergence; re-checking
# the row here keeps the failure message in one place. The speedup floor is
# deliberately below the ~linear ideal: the hub phase is sequential and the
# windows are short, so 8 threads landing 3x is the docs/perf.md target
# while 2-4 cores only have to beat half their core count.
with open(f"{out_dir}/BENCH_cluster_scale.json") as f:
    scale = json.load(f)
srows = {row["label"]: row["measured"] for row in scale["rows"]}
for label in ("sharded deterministic", "sharded speedup", "sharded threads"):
    if label not in srows:
        failures.append(f"cluster_scale row {label!r} missing")
if srows.get("sharded deterministic", 0.0) != 1.0:
    failures.append("cluster_scale: sharded runs diverged across thread counts")
if sharded_threads >= 2:
    speedup_floor = 3.0 if sharded_threads >= 8 else sharded_threads / 2.0
    speedup = srows.get("sharded speedup", 0.0)
    if speedup < speedup_floor:
        failures.append(
            f"cluster_scale: sharded speedup {speedup:.2f}x at "
            f"t={sharded_threads} below floor {speedup_floor:.2f}x")
else:
    print("perf smoke: single-core host, sharded speedup floor skipped "
          "(determinism still checked)")

# End-to-end sanity: table1 drives the full router model; anything below
# this means the core regression leaked into the real workload. The floor
# reflects the pooled/burst-coalesced data path (~13M events/sec on the
# development box); the old per-packet-allocating path lands under it.
TABLE1_EPS_FLOOR = 4.0e6
eps = table1["events_per_sec"]
if eps < TABLE1_EPS_FLOOR:
    failures.append(
        f"table1_queueing events/sec {eps:.0f} below floor {TABLE1_EPS_FLOOR:.0f}")

# --- allocation ceiling: "allocs" within 10% of the committed baseline ---
# alloc_count.cc reports 0 when the interposers are compiled out (Debug or
# sanitized builds); 0 on either side means "not counted", not "zero cost".
ALLOC_REGRESSION_PCT = 10.0
for bench_name in ("table1_queueing", "sim_core", "cluster_scale"):
    try:
        with open(f"{repo_root}/bench/baselines/BENCH_{bench_name}.json") as f:
            base_allocs = json.load(f).get("allocs", 0)
    except FileNotFoundError:
        base_allocs = 0
    with open(f"{out_dir}/BENCH_{bench_name}.json") as f:
        cur_allocs = json.load(f).get("allocs", 0)
    if base_allocs <= 0 or cur_allocs <= 0:
        print(f"perf smoke: {bench_name} alloc ceiling skipped "
              f"(baseline={base_allocs}, current={cur_allocs})")
        continue
    ceiling = base_allocs * (1.0 + ALLOC_REGRESSION_PCT / 100.0)
    if cur_allocs > ceiling:
        failures.append(
            f"{bench_name} allocs {cur_allocs} exceed baseline {base_allocs} "
            f"by more than {ALLOC_REGRESSION_PCT:.0f}% (ceiling {ceiling:.0f})")

# Steady state must stay allocation-free: the measurement windows of the
# whole Table 1 ladder together may not allocate more than this (pooled
# frames, inline event nodes, in-place MP segmentation — nothing per
# packet). Skipped when counting is compiled out.
STEADY_ALLOCS_CEILING = 10_000
steady = table1.get("steady_allocs", 0)
if table1.get("allocs", 0) > 0 and steady > STEADY_ALLOCS_CEILING:
    failures.append(
        f"table1_queueing steady-state allocs {steady} exceed "
        f"ceiling {STEADY_ALLOCS_CEILING}")

if failures:
    print("perf smoke FAILED:")
    for f in failures:
        print("  -", f)
    sys.exit(1)
print(f"perf smoke OK: table1 rows within +/-{TABLE1_BAND_PCT:.0f}%, "
      f"core floors met, sharded cluster deterministic "
      f"(speedup {srows.get('sharded speedup', 0.0):.2f}x at "
      f"t={sharded_threads}), table1 at {eps/1e6:.1f}M events/sec")
EOF
