#!/usr/bin/env bash
# Builds and runs the test suite under a sanitizer.
#
#   ci/sanitize.sh [address|undefined|thread] [extra ctest args...]
#
# Each sanitizer gets its own build tree (build-<san>) so switching between
# them never mixes instrumented and plain objects.
#
# `thread` exists for the sharded cluster engine (src/sim/shard_group.h):
# with no extra ctest args it runs the ParallelCluster*, Overload*, and
# Upgrade* suites — the tests that actually exercise cross-thread
# synchronization (the overload suite floods an 8-node sharded cluster with
# per-node governors; the upgrade suite rolls a hitless upgrade across one
# node by node) — so a TSan sweep stays minutes, not hours. Pass explicit
# ctest args to widen it.
set -euo pipefail

san="${1:-address}"
case "$san" in
  address|undefined|thread) ;;
  *)
    echo "usage: $0 [address|undefined|thread] [ctest args...]" >&2
    exit 2
    ;;
esac
shift || true

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build-$san"

cmake -B "$build_dir" -S "$repo_root" -DNPR_SANITIZE="$san"
if [ "$san" = thread ] && [ "$#" -eq 0 ]; then
  # PacketPool/Packet/IssueBurst ride along: FrameBuf refcounts are the one
  # atomic the packet path relies on (heap-backed frames cross shard
  # threads), so the pool suites belong in every TSan (and ASan) sweep.
  cmake --build "$build_dir" -j "$(nproc)" --target parallel_cluster_test --target overload_test --target upgrade_test --target net_test --target mem_test
  ctest --test-dir "$build_dir" --output-on-failure -R 'ParallelCluster|Overload|Upgrade|PacketPool|Packet\.|MacPort|IssueBurst'
else
  cmake --build "$build_dir" -j "$(nproc)"
  ctest --test-dir "$build_dir" --output-on-failure "$@"
fi
