#!/usr/bin/env bash
# Builds and runs the test suite under a sanitizer.
#
#   ci/sanitize.sh [address|undefined|thread] [extra ctest args...]
#
# Each sanitizer gets its own build tree (build-<san>) so switching between
# them never mixes instrumented and plain objects.
set -euo pipefail

san="${1:-address}"
case "$san" in
  address|undefined|thread) ;;
  *)
    echo "usage: $0 [address|undefined|thread] [ctest args...]" >&2
    exit 2
    ;;
esac
shift || true

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build-$san"

cmake -B "$build_dir" -S "$repo_root" -DNPR_SANITIZE="$san"
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure "$@"
