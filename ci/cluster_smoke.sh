#!/usr/bin/env bash
# Cluster failover smoke test: a Release build of the 4-node cluster must
# detect link and node failures, reconverge within its MTTD/MTTR budgets,
# and keep the survivors' aggregate rate at the fault-free baseline.
#
#   ci/cluster_smoke.sh [build-dir]     (default: build-perf)
#
# Runs bench/cluster_failover under a fixed seed matrix. The bench itself
# exits non-zero on an unclosed reconvergence record, a blackholed victim
# prefix, or a cluster-invariant violation; this script additionally holds
# the MTTD/MTTR rows in BENCH_cluster_failover.json to their budgets and
# requires every delivery ratio to stay within 5% of fault-free.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-perf}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$(nproc)" --target cluster_failover

out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT
cd "$out_dir"

# Fixed seed matrix: alternates first, the default seed last so the JSON
# checked below comes from the canonical run. Every seed must exit 0 (the
# bench fails itself on open records, blackholes, or invariant violations).
for seed in 0x5eed1 0x5eed2 0xfa017; do
  echo "--- cluster_failover seed $seed ---"
  "$build_dir/bench/cluster_failover" "$seed"
done

python3 - "$out_dir" <<'EOF'
import json
import sys

out_dir = sys.argv[1]
failures = []

# Budgets in microseconds, per cluster fault class. Detection is bounded by
# the federated-health probe loop (node crash) or the OSPF-lite dead
# interval (link down); repair adds flooding plus every survivor's SPF
# re-run; readmission is database resync only. See docs/cluster.md.
BUDGETS_US = {
    "cluster: node-crash MTTD": 300.0,
    "cluster: node-crash MTTR": 400.0,
    "cluster: link-down MTTD": 450.0,
    "cluster: link-down MTTR": 500.0,
    "cluster: readmit MTTR": 300.0,
}
# Post-failover goodput ratios vs the fault-free baseline.
RATIO_ROWS = [
    "cluster: survivor rate ratio after crash",
    "cluster: victim rate ratio during link-down",
    "cluster: fabric-loss delivery ratio",
]
RATIO_FLOOR = 0.95
OPEN_ROW = "cluster: chaos open records at end"

with open(f"{out_dir}/BENCH_cluster_failover.json") as f:
    bench = json.load(f)
rows = {row["label"]: row for row in bench["rows"]}

for label, budget in BUDGETS_US.items():
    row = rows.get(label)
    if row is None:
        failures.append(f"row {label!r} missing")
    elif row["measured"] <= 0:
        failures.append(f"{label}: no reconvergence measured")
    elif row["measured"] > budget:
        failures.append(
            f"{label}: {row['measured']:.1f} us over budget {budget:.1f} us")

for label in RATIO_ROWS:
    row = rows.get(label)
    if row is None:
        failures.append(f"row {label!r} missing")
    elif row["measured"] < RATIO_FLOOR:
        failures.append(
            f"{label}: {row['measured']:.3f} below floor {RATIO_FLOOR}")

open_row = rows.get(OPEN_ROW)
if open_row is None:
    failures.append(f"row {OPEN_ROW!r} missing")
elif open_row["measured"] != 0:
    failures.append(f"{OPEN_ROW}: {open_row['measured']:.0f} record(s) never closed")

if failures:
    print("cluster smoke FAILED:")
    for f in failures:
        print("  -", f)
    sys.exit(1)
print("cluster smoke OK: every fault class reconverged within budget, "
      f"all delivery ratios >= {RATIO_FLOOR}")
EOF
