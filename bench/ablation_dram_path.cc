// §3.7 ablation: the early DRAM-direct design. Ports DMA packets straight
// to/from DRAM, bypassing the FIFOs — four memory accesses per byte of a
// minimal packet. The paper's early implementation saturated DRAM while
// forwarding 2.69 Mpps (vs 3.47 Mpps for the FIFO design).

#include "bench/bench_util.h"

int main() {
  using namespace npr;
  using namespace npr::bench;

  Title("§3.7 ablation — FIFO staging vs DRAM-direct port transfers");
  RowHeader();

  const double fifo = RunRate(InfiniteFifoConfig());

  double direct = 0;
  double dram_util = 0;
  {
    RouterConfig cfg = InfiniteFifoConfig();
    cfg.dram_direct_path = true;
    Router router(std::move(cfg));
    AddDefaultRoutes(router);
    router.Start();
    router.RunForMs(2.0);
    router.StartMeasurement();
    const SimTime t0 = router.engine().now();
    router.RunForMs(10.0);
    RecordEvents(router.engine().events_run());
    direct = router.ForwardingRateMpps();
    dram_util = router.chip().memory().dram().Utilization(t0);
  }

  Row("FIFO-staged design (the paper's router)", 3.47, fifo);
  Row("DRAM-direct design (early implementation)", 2.69, direct);
  std::printf("  DRAM utilization in direct mode: %.0f%% (the saturated resource)\n",
              dram_util * 100);
  Note("the direct design moves every byte through DRAM four times; the FIFO");
  Note("design halves the DRAM traffic for 64-byte packets (§3.7).");
  bench::EmitJson("ablation_dram_path");
  return 0;
}
