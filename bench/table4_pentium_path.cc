// Table 4: maximum forwarding rate through the Pentium, and the excess
// per-packet processor cycles at that rate (§3.7). Reproduces the paper's
// loop test: the StrongARM feeds packets to the Pentium as fast as
// possible; the Pentium (software-simulated I2O) echoes them back.

#include "bench/bench_util.h"

namespace npr {
namespace {

struct Result {
  double kpps = 0;
  double pentium_spare = 0;
  double strongarm_spare = 0;
};

Result RunFeed(size_t frame_bytes) {
  RouterConfig cfg;
  cfg.input_contexts_override = 0;   // loop test: no MicroEngine stages
  cfg.output_contexts_override = 0;
  Router router(std::move(cfg));
  router.bridge().EnableFeedMode(frame_bytes, /*move_full_frame=*/true);
  router.Start();

  router.RunForMs(5.0);
  router.StartMeasurement();
  const uint64_t before = router.bridge().feed_roundtrips();
  const SimTime t0 = router.engine().now();
  router.RunForMs(50.0);
  const uint64_t done = router.bridge().feed_roundtrips() - before;
  const double seconds = static_cast<double>(router.engine().now() - t0) /
                         static_cast<double>(kPsPerSec);

  Result r;
  r.kpps = static_cast<double>(done) / seconds / 1e3;
  // "We inserted a delay loop on both sides to determine the number of
  // spare cycles available": spare = idle capacity divided by the rate.
  const double pe_util = router.host().pentium().Utilization(t0);
  const double sa_util = router.chip().strongarm().Utilization(t0);
  r.pentium_spare = (1.0 - pe_util) * kPentiumClock.FrequencyHz() / (r.kpps * 1e3);
  r.strongarm_spare = (1.0 - sa_util) * kIxpClock.FrequencyHz() / (r.kpps * 1e3);
  bench::RecordEvents(router.engine().events_run());
  return r;
}

}  // namespace
}  // namespace npr

int main() {
  using namespace npr;
  using namespace npr::bench;

  Title("Table 4 — maximum Pentium-path forwarding rate and spare cycles");

  const Result small = RunFeed(64);
  const Result large = RunFeed(1500);

  RowHeader();
  Row("64 B: rate", 534.0, small.kpps, "Kpps");
  Row("64 B: Pentium spare cycles/packet", 500, small.pentium_spare, "cy");
  Row("64 B: StrongARM spare cycles/packet", 0, small.strongarm_spare, "cy");
  Row("1500 B: rate", 43.6, large.kpps, "Kpps");
  Row("1500 B: Pentium spare cycles/packet", 800, large.pentium_spare, "cy");
  Row("1500 B: StrongARM spare cycles/packet", 4200, large.strongarm_spare, "cy");
  Note("64 B is StrongARM-bound (374 cy/packet bridge cost); 1500 B is bound by");
  Note("the 32-bit x 33 MHz PCI bus (2 x 1500 B x 43.6 Kpps ~= 1.05 Gbps).");
  bench::EmitJson("table4_pentium_path");
  return 0;
}
