// Table 1: maximum packet rates by input and output queueing discipline
// (§3.5.1). As in the paper, each stage is measured in isolation — the
// input process against a zero-cost drain, the output process "fooled into
// believing data was always available" — plus the in-text numbers: the
// 8 x 100 Mbps line-rate run (1.128 Mpps) and the fastest feasible system.

#include "bench/bench_util.h"

namespace npr {
namespace {

using bench::InfiniteFifoConfig;

double InputOnly(InputQueueing iq, bool single_dst) {
  RouterConfig cfg = InfiniteFifoConfig();
  cfg.input_queueing = iq;
  cfg.output_contexts_override = 0;
  cfg.magic_drain = true;
  cfg.synthetic_single_dst = single_dst;
  return bench::RunRate(std::move(cfg));
}

double OutputOnly(OutputServicing os) {
  RouterConfig cfg = InfiniteFifoConfig();
  cfg.input_contexts_override = 0;
  cfg.output_fake_data = true;
  cfg.output_servicing = os;
  Router router(std::move(cfg));
  bench::AddDefaultRoutes(router);
  router.Start();
  return bench::MeasureMpps(router);
}

double LineRate8x100() {
  RouterConfig cfg;  // real ports
  cfg.enable_pentium = false;
  Router router(std::move(cfg));
  // Observability: per-path latency percentiles and per-engine cycle
  // accounting for the end-to-end run land in BENCH_table1_queueing.json.
  // In a NPR_OBS=OFF build the hook sites compile away, nothing is
  // collected, and the output is unchanged.
  Observer obs(router.engine());
  router.SetObserver(&obs);
  bench::AddDefaultRoutes(router);
  router.WarmRouteCache(64);
  router.Start();
  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int p = 0; p < 8; ++p) {
    TrafficSpec spec;
    spec.rate_pps = 141'000;
    gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                static_cast<uint64_t>(p + 1)));
    gens.back()->Start(16 * kPsPerMs);
  }
  const double mpps = bench::MeasureMpps(router, 4.0, 10.0);
  bench::RecordObserver(obs);
  return mpps;
}

double FastestFeasibleSystem() {
  // I.2 + O.1 running together end to end (our full-system number; the
  // paper quotes the input-stage bound 3.47 for this configuration).
  return bench::RunRate(InfiniteFifoConfig());
}

}  // namespace
}  // namespace npr

int main() {
  using namespace npr;
  using namespace npr::bench;

  Title("Table 1 — maximum packet rates by queueing discipline (Mpps)");
  RowHeader();
  Row("I.1  private queues in registers", 3.75, InputOnly(InputQueueing::kPrivatePerContext, false));
  Row("I.2  protected public queues, no contention", 3.47,
      InputOnly(InputQueueing::kProtectedPublic, false));
  Row("I.3  protected public queues, max contention", 1.67,
      InputOnly(InputQueueing::kProtectedPublic, true));
  Row("O.1  single queue with batching", 3.78, OutputOnly(OutputServicing::kSingleQueueBatching));
  Row("O.2  single queue without batching", 3.41,
      OutputOnly(OutputServicing::kSingleQueueNoBatching));
  Row("O.3  multiple queues with indirection", 3.29,
      OutputOnly(OutputServicing::kMultiQueueIndirection));
  Note("paper O.1 (3.78 Mpps at 109 reg-ops/MP) exceeds the 2x200 MHz/109 = 3.67 Mpps");
  Note("pipeline ceiling; our output rows are bounded by it (orderings preserved).");

  Title("In-text results (§3.5.1)");
  RowHeader();
  Row("8 x 100 Mbps line rate, zero loss", 1.128, LineRate8x100());
  Row("fastest feasible system (I.2 + O.1)", 3.47, FastestFeasibleSystem());
  Note("the paper quotes the input-stage isolation bound; this row runs both");
  Note("stages together end to end, so it is bounded by min(I.2, O.1).");
  bench::EmitJson("table1_queueing");
  return 0;
}
