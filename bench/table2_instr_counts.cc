// Table 2: instruction counts for processing one MP, broken down by input
// and output processing and by type of memory involved (measured from the
// instrumented I.2 + O.1 run), plus the paper's derived per-packet analysis
// (710 cycles total, ~12 packets in flight, 80% of the optimistic bound).

#include "bench/bench_util.h"

int main() {
  using namespace npr;
  using namespace npr::bench;

  RouterConfig cfg = InfiniteFifoConfig();
  Router router(std::move(cfg));
  AddDefaultRoutes(router);
  router.Start();
  router.RunForMs(2.0);
  router.StartMeasurement();
  router.RunForMs(10.0);
  RecordEvents(router.engine().events_run());

  const StageStats& in = router.stats().input;
  const StageStats& out = router.stats().output;

  Title("Table 2 — per-MP operation counts (I.2 + O.1)");
  RowHeader();
  Row("input: register-only instructions", 171, in.PerMp(in.reg_cycles), "ops");
  Row("input: DRAM 32 B (reads)", 0, in.PerMp(in.dram_reads), "ops");
  Row("input: DRAM 32 B (writes)", 2, in.PerMp(in.dram_writes), "ops");
  Row("input: SRAM 4 B (reads)", 2, in.PerMp(in.sram_reads), "ops");
  Row("input: SRAM 4 B (writes)", 1, in.PerMp(in.sram_writes), "ops");
  Row("input: Scratch 4 B (reads)", 0, in.PerMp(in.scratch_reads), "ops");
  Row("input: Scratch 4 B (writes)", 4, in.PerMp(in.scratch_writes), "ops");
  Row("output: register-only instructions", 109, out.PerMp(out.reg_cycles), "ops");
  Row("output: DRAM 32 B (reads)", 2, out.PerMp(out.dram_reads), "ops");
  Row("output: SRAM 4 B (reads, burst-amortized)", 0, out.PerMp(out.sram_reads), "ops");
  Row("output: SRAM 4 B (writes)", 1, out.PerMp(out.sram_writes), "ops");
  Row("output: Scratch 4 B (reads)", 2, out.PerMp(out.scratch_reads), "ops");
  Row("output: Scratch 4 B (writes)", 2, out.PerMp(out.scratch_writes), "ops");
  Row("total: register-only instructions", 280, in.PerMp(in.reg_cycles) + out.PerMp(out.reg_cycles),
      "ops");
  Note("CAM mutex traffic is accounted separately, as in the paper's");
  Note("instrumentation: " + std::to_string(in.PerMp(in.mutex_ops)) + " mutex ops per MP.");

  // The paper's §3.5.1 derivation from these counts.
  Title("Derived per-packet analysis (§3.5.1)");
  RowHeader();
  const double rate = router.ForwardingRateMpps();
  const double interval_ns = 1000.0 / rate;
  // Unloaded memory delay per packet: 2 DRAM w (40 cy) + 2 DRAM r (52) +
  // 2+2 SRAM (22) + 6+... Scratch per Table 3 — paper's total: 430 cycles.
  const double mem_delay = 2 * 40 + 2 * 52 + 4 * 22 + 2 * 16 + 6 * 20;
  Row("total cycles per packet (280 + memory delay)", 710, 280 + mem_delay, "cy");
  Row("packet inter-departure time", 288, interval_ns, "ns");
  const double per_packet_ns = (280 + mem_delay) * 5.0;
  Row("packets in flight (delay / interval)", 12.3, per_packet_ns / interval_ns, "pkts");
  Row("fraction of optimistic 4.29 Mpps bound", 0.80, rate / 4.286, "x");
  bench::EmitJson("table2_instr_counts");
  return 0;
}
