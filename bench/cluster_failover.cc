// Cluster failover bench: the §6 multi-chassis router under link, fabric,
// and whole-node faults, with the OSPF-lite control plane and federated
// health monitor attached. Reports MTTD/MTTR per cluster fault class (from
// the control plane's ReconvergenceRecords), the survivors' aggregate rate
// after a permanent node crash vs their fault-free baseline, and whether
// cluster-wide invariants (per-node conservation, fabric accounting, no
// blackholes) hold at the end of every scenario. Rows land in
// BENCH_cluster_failover.json for ci/cluster_smoke.sh.

#include <chrono>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <sstream>

#include "bench/bench_util.h"
#include "src/cluster/cluster_control.h"
#include "src/fault/fault_injector.h"
#include "src/fault/router_invariants.h"
#include "src/health/cluster_health.h"

namespace npr {
namespace {

constexpr int kNodes = 4;
constexpr int kVictim = 3;  // never a traffic source, so survivor rates are clean
constexpr double kRunMs = 20.0;
constexpr double kMeasureFromMs = 10.0;

struct ScenarioResult {
  uint64_t survivor_delivered = 0;  // measure-window deliveries, nodes != victim
  uint64_t victim_delivered = 0;    // measure-window deliveries to the victim
  uint64_t routes_withdrawn = 0;
  uint64_t spf_recomputes = 0;
  uint64_t icmp_originated = 0;
  std::vector<ReconvergenceRecord> records;
  uint64_t open_records = 0;
  uint64_t suspects = 0;
  bool invariants_ok = false;
  std::string report;
};

struct Scenario {
  int planes = 1;
  FaultPlan plan;  // per-node seeds are derived inside ClusterRouter
  bool attach_health = true;
  // Direct fault application at a fixed time (empty for injector-driven).
  std::function<void(ClusterControlPlane&, EventQueue&)> faults;
  double disarm_at_ms = 0;  // >0: disarm every injector at this time
};

ScenarioResult Run(const Scenario& sc, uint64_t seed) {
  ClusterConfig cfg;
  cfg.nodes = kNodes;
  cfg.internal_links = sc.planes;
  cfg.node_config.fault_plan = sc.plan;
  cfg.node_config.fault_plan.seed = seed;
  ClusterRouter cluster(std::move(cfg));
  ClusterControlPlane control(cluster);
  control.Start();
  std::unique_ptr<ClusterHealthMonitor> health;
  if (sc.attach_health) {
    health = std::make_unique<ClusterHealthMonitor>(cluster, control);
  }
  cluster.Start();

  // Deliveries by destination node; snapshot at the measure boundary.
  std::vector<uint64_t> delivered(kNodes, 0);
  std::vector<uint64_t> at_boundary(kNodes, 0);
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    for (int p = 0; p < cluster.external_ports_per_node(); ++p) {
      cluster.node(k).port(p).SetSink([&delivered, k](Packet&& packet) {
        // Count goodput only: ICMP errors shed back at the sources are
        // accounted separately via icmp_originated.
        auto ip = Ipv4Header::Parse(packet.l3());
        if (ip && ip->protocol != kIpProtoIcmp) {
          ++delivered[k];
        }
      });
    }
  }
  cluster.engine().ScheduleIn(static_cast<SimTime>(kMeasureFromMs * kPsPerMs),
                              [&] { at_boundary = delivered; });

  // 141 Kpps per source node (nodes 0..2; the victim is egress-only), half
  // the destinations behind other nodes — the cluster_scale §6 workload.
  Rng rng(seed ^ 0x7ea5u);
  const SimTime gap = static_cast<SimTime>(kPsPerSec / 141'000);
  const SimTime stop_at = static_cast<SimTime>((kRunMs - 1.0) * kPsPerMs);
  std::function<void(int)> pump = [&](int node) {
    if (cluster.engine().now() > stop_at) {
      return;
    }
    int g;
    if (rng.Chance(0.5)) {
      int other;
      do {
        other = static_cast<int>(rng.Uniform(static_cast<uint64_t>(cluster.num_nodes())));
      } while (other == node);
      g = other * cluster.external_ports_per_node() +
          static_cast<int>(
              rng.Uniform(static_cast<uint64_t>(cluster.external_ports_per_node())));
    } else {
      g = node * cluster.external_ports_per_node() + 1 +
          static_cast<int>(
              rng.Uniform(static_cast<uint64_t>(cluster.external_ports_per_node() - 1)));
    }
    PacketSpec spec;
    spec.dst_ip = cluster.ExternalDstIp(g, static_cast<uint16_t>(1 + rng.Uniform(16)));
    // Source inside the node's own port-0 prefix, so shed traffic's ICMP
    // unreachables have a route back to the offender.
    spec.src_ip = cluster.ExternalDstIp(node * cluster.external_ports_per_node(),
                                        static_cast<uint16_t>(200 + node));
    cluster.node(node).port(0).InjectFromWire(BuildPacket(spec));
    cluster.engine().ScheduleIn(gap, [&pump, node] { pump(node); });
  };
  for (int k = 0; k < kNodes; ++k) {
    if (k != kVictim) {
      pump(k);
    }
  }

  if (sc.faults) {
    sc.faults(control, cluster.engine());
  }
  if (sc.disarm_at_ms > 0) {
    cluster.engine().ScheduleIn(static_cast<SimTime>(sc.disarm_at_ms * kPsPerMs), [&] {
      for (int k = 0; k < cluster.num_nodes(); ++k) {
        if (FaultInjector* fi = cluster.node(k).fault_injector()) {
          fi->set_armed(false);
        }
      }
    });
  }

  cluster.RunForMs(kRunMs);
  bench::RecordEvents(cluster.engine().events_run());

  ScenarioResult r;
  for (int k = 0; k < kNodes; ++k) {
    const uint64_t window = delivered[static_cast<size_t>(k)] - at_boundary[static_cast<size_t>(k)];
    if (k == kVictim) {
      r.victim_delivered = window;
    } else {
      r.survivor_delivered += window;
    }
    const RouterStats& stats = cluster.node(k).stats();
    r.routes_withdrawn += stats.routes_withdrawn;
    r.spf_recomputes += stats.spf_recomputes;
    r.icmp_originated += stats.icmp_originated;
  }
  r.records = control.records();
  for (const ReconvergenceRecord& rec : r.records) {
    r.open_records += rec.closed() ? 0 : 1;
  }
  if (health != nullptr) {
    r.suspects = health->suspects_raised();
  }
  const InvariantReport inv = RouterInvariants::CheckCluster(cluster);
  r.invariants_ok = inv.ok();
  r.report = inv.ToString();
  return r;
}

// --- sharded chaos (docs/perf.md, "Sharded cluster simulation") ---
//
// The chaos scenario again, but on the sharded engine: 2 µs fabric
// latency, per-node pumps on their own shards (per-node derived seeds, so
// the workload is interleaving-independent), control plane + federated
// health on the hub. Run at t=1 and t=N; the runs must be bit-identical.

struct ShardedChaosRun {
  double wall_s = 0;
  bool invariants_ok = false;
  std::string report;
  uint64_t open_records = 0;
  std::string fingerprint;
};

ShardedChaosRun RunShardedChaos(int threads, uint64_t seed) {
  ClusterConfig cfg;
  cfg.nodes = kNodes;
  cfg.internal_links = 2;
  cfg.node_config.fault_plan = FaultPlan::ClusterChaos(seed);
  cfg.node_config.fault_plan.seed = seed;
  cfg.fabric_latency_ps = 2 * kPsPerUs;
  cfg.threads = threads;
  ClusterRouter cluster(std::move(cfg));
  ClusterControlPlane control(cluster);
  control.Start();
  ClusterHealthMonitor health(cluster, control);
  cluster.Start();

  // Per-destination-node counters, each written only by that node's shard.
  std::vector<uint64_t> delivered(kNodes, 0);
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    for (int p = 0; p < cluster.external_ports_per_node(); ++p) {
      cluster.node(k).port(p).SetSink([&delivered, k](Packet&& packet) {
        auto ip = Ipv4Header::Parse(packet.l3());
        if (ip && ip->protocol != kIpProtoIcmp) {
          ++delivered[static_cast<size_t>(k)];
        }
      });
    }
  }

  struct Pump {
    ClusterRouter* cluster;
    int node;
    Rng rng;
    SimTime gap;
    SimTime stop_at;
    void Tick() {
      EventQueue& eng = cluster->node_engine(node);
      if (eng.now() > stop_at) {
        return;
      }
      int g;
      if (rng.Chance(0.5)) {
        int other;
        do {
          other = static_cast<int>(rng.Uniform(static_cast<uint64_t>(cluster->num_nodes())));
        } while (other == node);
        g = other * cluster->external_ports_per_node() +
            static_cast<int>(
                rng.Uniform(static_cast<uint64_t>(cluster->external_ports_per_node())));
      } else {
        g = node * cluster->external_ports_per_node() + 1 +
            static_cast<int>(
                rng.Uniform(static_cast<uint64_t>(cluster->external_ports_per_node() - 1)));
      }
      PacketSpec spec;
      spec.dst_ip = cluster->ExternalDstIp(g, static_cast<uint16_t>(1 + rng.Uniform(16)));
      spec.src_ip = cluster->ExternalDstIp(node * cluster->external_ports_per_node(),
                                           static_cast<uint16_t>(200 + node));
      cluster->node(node).port(0).InjectFromWire(BuildPacket(spec));
      eng.ScheduleIn(gap, [this] { Tick(); });
    }
  };
  const SimTime gap = static_cast<SimTime>(kPsPerSec / 141'000);
  const SimTime stop_at = static_cast<SimTime>((kRunMs - 1.0) * kPsPerMs);
  std::vector<std::unique_ptr<Pump>> pumps;
  for (int k = 0; k < kNodes; ++k) {
    if (k == kVictim) {
      continue;
    }
    pumps.push_back(std::unique_ptr<Pump>(new Pump{
        &cluster, k, Rng(FaultPlan::DeriveNodeSeed(seed ^ 0x7ea5u, k)), gap, stop_at}));
  }
  for (auto& pump : pumps) {
    pump->Tick();
  }

  cluster.engine().ScheduleIn(12 * kPsPerMs, [&] {
    for (int k = 0; k < cluster.num_nodes(); ++k) {
      if (FaultInjector* fi = cluster.node(k).fault_injector()) {
        fi->set_armed(false);
      }
    }
  });

  const auto t0 = std::chrono::steady_clock::now();
  cluster.RunForMs(kRunMs);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  bench::RecordEvents(cluster.TotalEventsRun());

  ShardedChaosRun run;
  run.wall_s = wall;
  const InvariantReport inv = RouterInvariants::CheckCluster(cluster);
  run.invariants_ok = inv.ok();
  run.report = inv.ToString();
  for (const ReconvergenceRecord& rec : control.records()) {
    run.open_records += rec.closed() ? 0 : 1;
  }

  // Everything a reordering bug could perturb: deliveries, per-node stats,
  // the control plane's full record list, health counters, event totals.
  std::ostringstream fp;
  for (int k = 0; k < kNodes; ++k) {
    const RouterStats& stats = cluster.node(k).stats();
    fp << "n" << k << ":d=" << delivered[static_cast<size_t>(k)]
       << ",fwd=" << stats.forwarded << ",icmp=" << stats.icmp_originated
       << ",wd=" << stats.routes_withdrawn << ",spf=" << stats.spf_recomputes << ";";
  }
  for (const ReconvergenceRecord& rec : control.records()) {
    fp << "rec(" << static_cast<int>(rec.kind) << "," << rec.node << "," << rec.fault_at
       << "," << rec.detected_at << "," << rec.reconverged_at << ");";
  }
  fp << "susp=" << health.suspects_raised() << ",acked=" << health.probes_acked()
     << ",failed=" << health.probes_failed() << ",ev=" << cluster.TotalEventsRun()
     << ",now=" << cluster.now();
  run.fingerprint = fp.str();
  return run;
}

struct KindStats {
  double mttd_us = 0;
  double mttr_us = 0;
  int closed = 0;
};

KindStats StatsFor(const ScenarioResult& r, ReconvergenceRecord::Kind kind) {
  KindStats s;
  for (const ReconvergenceRecord& rec : r.records) {
    if (rec.kind != kind || !rec.closed()) {
      continue;
    }
    s.closed += 1;
    s.mttd_us += static_cast<double>(rec.mttd_ps()) / kPsPerUs;
    s.mttr_us += static_cast<double>(rec.mttr_ps()) / kPsPerUs;
  }
  if (s.closed > 0) {
    s.mttd_us /= s.closed;
    s.mttr_us /= s.closed;
  }
  return s;
}

}  // namespace
}  // namespace npr

int main(int argc, char** argv) {
  using namespace npr;

  uint64_t seed = 0xfa017ULL;
  int sharded_threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      sharded_threads = std::atoi(argv[i] + 10);
    } else {
      seed = std::strtoull(argv[i], nullptr, 0);
    }
  }
  if (sharded_threads < 2) {
    sharded_threads = 2;
  }
  bench::SetRunInfo(seed, "ClusterChaos");
  bool all_ok = true;
  auto check = [&all_ok](const char* name, const ScenarioResult& r) {
    if (!r.invariants_ok) {
      all_ok = false;
      std::printf("  %s invariants FAIL: %s\n", name, r.report.c_str());
    }
  };

  char title[96];
  std::snprintf(title, sizeof(title),
                "cluster failover: 4 nodes, OSPF-lite + federated health (seed 0x%" PRIx64 ")",
                seed);
  bench::Title(title);
  bench::RowHeader();

  // Fault-free baseline: the survivors' aggregate delivery over the measure
  // window, for the post-crash ratio.
  Scenario base;
  const ScenarioResult baseline = Run(base, seed);
  check("baseline", baseline);
  if (!baseline.records.empty()) {
    all_ok = false;
    std::printf("  baseline: %zu spurious reconvergence record(s)\n", baseline.records.size());
  }

  // Permanent node crash: the victim's prefixes must be withdrawn (shed as
  // ICMP unreachables, not blackholed) while survivor traffic keeps flowing.
  Scenario crash;
  crash.faults = [](ClusterControlPlane& control, EventQueue& engine) {
    engine.ScheduleIn(6 * kPsPerMs,
                      [&control] { control.ApplyNodeCrash(kVictim, FaultInjector::kForever); });
  };
  const ScenarioResult crashed = Run(crash, seed);
  check("node-crash", crashed);
  const KindStats node_down = StatsFor(crashed, ReconvergenceRecord::Kind::kNodeDown);
  bench::Row("cluster: node-crash MTTD", 300.0, node_down.mttd_us, "us");
  bench::Row("cluster: node-crash MTTR", 400.0, node_down.mttr_us, "us");
  const double survivor_ratio =
      baseline.survivor_delivered > 0
          ? static_cast<double>(crashed.survivor_delivered) /
                static_cast<double>(baseline.survivor_delivered)
          : 0.0;
  bench::Row("cluster: survivor rate ratio after crash", 1.0, survivor_ratio, "x");
  std::printf("  node-crash: %" PRIu64 " route withdrawals, %" PRIu64
              " ICMP unreachables shed, %" PRIu64 " health suspect(s)\n",
              crashed.routes_withdrawn, crashed.icmp_originated, crashed.suspects);
  all_ok = all_ok && node_down.closed == 1 && crashed.routes_withdrawn > 0 &&
           crashed.victim_delivered == 0 && crashed.suspects >= 1 &&
           crashed.icmp_originated > 0;

  // Link down on one of two planes: reconvergence reroutes through the
  // surviving plane, so the victim's prefixes stay reachable throughout.
  Scenario link;
  link.planes = 2;
  link.faults = [](ClusterControlPlane& control, EventQueue& engine) {
    engine.ScheduleIn(6 * kPsPerMs,
                      [&control] { control.ApplyLinkDown(kVictim, 0, 8 * kPsPerMs); });
  };
  const ScenarioResult linkdown = Run(link, seed);
  check("link-down", linkdown);
  const KindStats link_stats = StatsFor(linkdown, ReconvergenceRecord::Kind::kLinkDown);
  bench::Row("cluster: link-down MTTD", 450.0, link_stats.mttd_us, "us");
  bench::Row("cluster: link-down MTTR", 500.0, link_stats.mttr_us, "us");
  const double link_ratio =
      baseline.victim_delivered > 0 ? static_cast<double>(linkdown.victim_delivered) /
                                          static_cast<double>(baseline.victim_delivered)
                                    : 0.0;
  bench::Row("cluster: victim rate ratio during link-down", 1.0, link_ratio, "x");
  all_ok = all_ok && link_stats.closed == 1;

  // Finite crash and warm-restart readmission: the node comes back, floods a
  // bumped self-LSA, gets a database resync, and survivors re-install its
  // routes — MTTR measured from the restart.
  Scenario readmit;
  readmit.faults = [](ClusterControlPlane& control, EventQueue& engine) {
    engine.ScheduleIn(4 * kPsPerMs,
                      [&control] { control.ApplyNodeCrash(kVictim, 3 * kPsPerMs); });
  };
  const ScenarioResult readmitted = Run(readmit, seed);
  check("readmit", readmitted);
  const KindStats readmit_stats = StatsFor(readmitted, ReconvergenceRecord::Kind::kNodeReadmit);
  bench::Row("cluster: readmit MTTR", 300.0, readmit_stats.mttr_us, "us");
  all_ok = all_ok && readmit_stats.closed == 1 && readmitted.victim_delivered > 0;

  // Fabric frame loss: random drops degrade delivery slightly but must not
  // flap adjacencies or break accounting.
  Scenario loss;
  loss.plan.fabric_loss_p = 0.005;
  const ScenarioResult lossy = Run(loss, seed);
  check("fabric-loss", lossy);
  const uint64_t base_total = baseline.survivor_delivered + baseline.victim_delivered;
  const uint64_t lossy_total = lossy.survivor_delivered + lossy.victim_delivered;
  const double loss_ratio =
      base_total > 0 ? static_cast<double>(lossy_total) / static_cast<double>(base_total) : 0.0;
  bench::Row("cluster: fabric-loss delivery ratio", 1.0, loss_ratio, "x");
  all_ok = all_ok && lossy.records.empty();

  // Injector-driven chaos: every cluster fault class drawn from the derived
  // per-node streams, disarmed mid-run so the tail is pure recovery.
  Scenario chaos;
  chaos.planes = 2;
  chaos.plan = FaultPlan::ClusterChaos(seed);
  chaos.disarm_at_ms = 12.0;
  const ScenarioResult chaotic = Run(chaos, seed);
  check("chaos", chaotic);
  bench::Row("cluster: chaos open records at end", 0.0,
             static_cast<double>(chaotic.open_records), "rec");
  std::printf(
      "  chaos: %zu reconvergence record(s), %" PRIu64 " spf re-runs, %" PRIu64
      " route withdrawals, %" PRIu64 " ICMP unreachables\n",
      chaotic.records.size(), chaotic.spf_recomputes, chaotic.routes_withdrawn,
      chaotic.icmp_originated);

  // Sharded chaos: the same fault classes on the parallel engine. The t=1
  // and t=N runs must produce bit-identical fingerprints (traffic, stats,
  // reconvergence records, health counters) — a reordering bug anywhere in
  // the window barrier shows up here as a divergence, and fails the bench.
  const ShardedChaosRun seq = RunShardedChaos(1, seed);
  const ShardedChaosRun par = RunShardedChaos(sharded_threads, seed);
  const bool sharded_deterministic = seq.fingerprint == par.fingerprint;
  if (!seq.invariants_ok) {
    all_ok = false;
    std::printf("  sharded chaos t=1 invariants FAIL: %s\n", seq.report.c_str());
  }
  if (!par.invariants_ok) {
    all_ok = false;
    std::printf("  sharded chaos t=%d invariants FAIL: %s\n", sharded_threads,
                par.report.c_str());
  }
  if (!sharded_deterministic) {
    all_ok = false;
    std::printf("  sharded chaos DIVERGENCE:\n    t=1: %s\n    t=%d: %s\n",
                seq.fingerprint.c_str(), sharded_threads, par.fingerprint.c_str());
  }
  all_ok = all_ok && seq.open_records == 0 && par.open_records == 0;
  bench::Row("cluster: sharded chaos wall t=1", 0.0, seq.wall_s, "s");
  char sharded_label[64];
  std::snprintf(sharded_label, sizeof(sharded_label), "cluster: sharded chaos wall t=%d",
                sharded_threads);
  bench::Row(sharded_label, 0.0, par.wall_s, "s");
  bench::Row("cluster: sharded chaos speedup", 0.0,
             par.wall_s > 0 ? seq.wall_s / par.wall_s : 0.0, "x");
  bench::Row("cluster: sharded chaos deterministic", 1.0,
             sharded_deterministic ? 1.0 : 0.0, "bool");

  bench::Note("MTTD = fault to first dead-interval declaration; MTTR = fault to the");
  bench::Note("last surviving node's SPF re-run. The survivor ratio compares the three");
  bench::Note("surviving nodes' measure-window deliveries against their fault-free run;");
  bench::Note("ci/cluster_smoke.sh holds every row to its budget across a seed matrix.");

  bench::EmitJson("cluster_failover");
  return all_ok ? 0 : 1;
}
