// Fault-injection chaos bench: runs the same real-port workload under every
// shipped FaultPlan and reports the surviving forwarding rate, the injected
// fault counts, and whether all router invariants still hold at the end.
// A robust router degrades — it never wedges, leaks, or lies.

#include <cinttypes>

#include "bench/bench_util.h"
#include "src/fault/fault_injector.h"
#include "src/fault/router_invariants.h"

namespace npr {
namespace {

struct ChaosResult {
  double forwarded_kpps = 0;
  uint64_t injected = 0;
  uint64_t crashes = 0;
  uint64_t counted_drops = 0;
  bool invariants_ok = false;
  std::string report;
};

ChaosResult RunPlan(const FaultPlan& plan) {
  constexpr double kTrafficMs = 20.0;
  constexpr double kDrainMs = 5.0;

  RouterConfig cfg;
  cfg.fault_plan = plan;
  Router router(std::move(cfg));
  bench::AddDefaultRoutes(router);
  router.WarmRouteCache(32);
  router.Start();
  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int p = 0; p < 8; ++p) {
    TrafficSpec spec;
    spec.rate_pps = 120'000;
    spec.dst_spread = 16;
    gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                static_cast<uint64_t>(40 + p)));
    gens.back()->Start(static_cast<SimTime>(kTrafficMs * kPsPerMs));
  }
  router.RunForMs(kTrafficMs + kDrainMs);
  bench::RecordEvents(router.engine().events_run());

  ChaosResult r;
  const RouterStats& stats = router.stats();
  r.forwarded_kpps = static_cast<double>(stats.forwarded) / kTrafficMs;  // pkts/ms = kpps
  if (FaultInjector* fi = router.fault_injector()) {
    r.injected = fi->total_injected();
  }
  r.crashes = stats.context_crashes;
  uint64_t corrupt = 0;
  for (const auto& q : router.queues().all_queues()) {
    corrupt += q->corrupt_drops();
  }
  uint64_t crc = 0;
  for (int p = 0; p < router.num_ports(); ++p) {
    crc += router.port(p).rx_crc_dropped();
  }
  r.counted_drops = stats.dropped_invalid + stats.dropped_queue_full +
                    stats.lost_overwritten + corrupt + crc;
  const InvariantReport inv = RouterInvariants::CheckAll(router);
  r.invariants_ok = inv.ok();
  r.report = inv.ToString();
  return r;
}

}  // namespace
}  // namespace npr

int main() {
  using namespace npr;

  bench::Title("fault injection: forwarding under every shipped plan");
  std::printf("%-14s %12s %10s %9s %13s %11s\n", "plan", "fwd (kpps)", "injected",
              "crashes", "counted drops", "invariants");
  std::printf("%-14s %12s %10s %9s %13s %11s\n", "--------------", "-----------",
              "---------", "--------", "------------", "----------");

  const struct {
    const char* name;
    FaultPlan plan;
  } plans[] = {
      {"none", FaultPlan{}},
      {"memory", FaultPlan::MemoryFaults()},
      {"frame", FaultPlan::FrameFaults()},
      {"crash", FaultPlan::ContextCrashes()},
      {"token", FaultPlan::TokenFaults()},
      {"descriptor", FaultPlan::DescriptorFaults()},
      {"chaos", FaultPlan::Chaos()},
  };

  bool all_ok = true;
  for (const auto& p : plans) {
    const ChaosResult r = RunPlan(p.plan);
    std::printf("%-14s %12.1f %10" PRIu64 " %9" PRIu64 " %13" PRIu64 " %11s\n", p.name,
                r.forwarded_kpps, r.injected, r.crashes, r.counted_drops,
                r.invariants_ok ? "PASS" : "FAIL");
    if (!r.invariants_ok) {
      all_ok = false;
      std::printf("  %s\n", r.report.c_str());
    }
  }
  bench::Note("faults degrade throughput but must never wedge the pipeline,");
  bench::Note("leak a packet from the conservation balance, or corrupt queue state.");
  bench::EmitJson("fault_chaos");
  return all_ok ? 0 : 1;
}
