// Fault-injection chaos bench: runs the same real-port workload under every
// shipped FaultPlan and reports the surviving forwarding rate, the injected
// fault counts, and whether all router invariants still hold at the end.
// A robust router degrades — it never wedges, leaks, or lies.

// The recovery suite attaches the health monitor and reports MTTD/MTTR per
// fault class (token loss, lost context restarts, Pentium hangs) plus the
// path-A rate ratio after a RecoveryChaos burst ends — the self-healing
// acceptance numbers, emitted as rows in BENCH_fault_chaos.json for
// ci/chaos_smoke.sh.

#include <cinttypes>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/fault/fault_injector.h"
#include "src/fault/router_invariants.h"
#include "src/forwarders/native.h"
#include "src/health/health_monitor.h"

namespace npr {
namespace {

struct ChaosResult {
  double forwarded_kpps = 0;
  uint64_t injected = 0;
  uint64_t crashes = 0;
  uint64_t counted_drops = 0;
  bool invariants_ok = false;
  std::string report;
};

ChaosResult RunPlan(const FaultPlan& plan) {
  constexpr double kTrafficMs = 20.0;
  constexpr double kDrainMs = 5.0;

  RouterConfig cfg;
  cfg.fault_plan = plan;
  Router router(std::move(cfg));
  bench::AddDefaultRoutes(router);
  router.WarmRouteCache(32);
  router.Start();
  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int p = 0; p < 8; ++p) {
    TrafficSpec spec;
    spec.rate_pps = 120'000;
    spec.dst_spread = 16;
    gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                static_cast<uint64_t>(40 + p)));
    gens.back()->Start(static_cast<SimTime>(kTrafficMs * kPsPerMs));
  }
  router.RunForMs(kTrafficMs + kDrainMs);
  bench::RecordEvents(router.engine().events_run());

  ChaosResult r;
  const RouterStats& stats = router.stats();
  r.forwarded_kpps = static_cast<double>(stats.forwarded) / kTrafficMs;  // pkts/ms = kpps
  if (FaultInjector* fi = router.fault_injector()) {
    r.injected = fi->total_injected();
  }
  r.crashes = stats.context_crashes;
  uint64_t corrupt = 0;
  for (const auto& q : router.queues().all_queues()) {
    corrupt += q->corrupt_drops();
  }
  uint64_t crc = 0;
  for (int p = 0; p < router.num_ports(); ++p) {
    crc += router.port(p).rx_crc_dropped();
  }
  r.counted_drops = stats.dropped_invalid + stats.dropped_queue_full +
                    stats.lost_overwritten + corrupt + crc;
  const InvariantReport inv = RouterInvariants::CheckAll(router);
  r.invariants_ok = inv.ok();
  r.report = inv.ToString();
  return r;
}

// --- recovery suite ---

struct RecoverySummary {
  double mttd_us = 0;  // mean fault -> detection
  double mttr_us = 0;  // mean fault -> service restored
  int recovered = 0;
  int unrecovered = 0;
  bool invariants_ok = false;
};

void Accumulate(const HealthMonitor& health, RecoveryEvent::Kind kind, RecoverySummary* out) {
  double mttd = 0;
  double mttr = 0;
  for (const RecoveryEvent& e : health.events()) {
    if (e.kind != kind) {
      continue;
    }
    if (e.recovered_at == 0) {
      out->unrecovered += 1;
      continue;
    }
    out->recovered += 1;
    mttd += static_cast<double>(e.mttd_ps()) / kPsPerUs;
    mttr += static_cast<double>(e.mttr_ps()) / kPsPerUs;
  }
  if (out->recovered > 0) {
    out->mttd_us = mttd / out->recovered;
    out->mttr_us = mttr / out->recovered;
  }
}

// Real-port traffic run with the health monitor attached; returns the
// per-class summary for `kind`.
RecoverySummary RunRecovery(const FaultPlan& plan, RecoveryEvent::Kind kind) {
  constexpr double kTrafficMs = 20.0;
  RouterConfig cfg;
  cfg.fault_plan = plan;
  Router router(std::move(cfg));
  bench::AddDefaultRoutes(router);
  router.WarmRouteCache(32);
  router.Start();
  HealthMonitor health(router);
  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int p = 0; p < 8; ++p) {
    TrafficSpec spec;
    spec.rate_pps = 120'000;
    spec.dst_spread = 16;
    gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                static_cast<uint64_t>(40 + p)));
    gens.back()->Start(static_cast<SimTime>(kTrafficMs * kPsPerMs));
  }
  router.RunForMs(kTrafficMs + 5.0);
  bench::RecordEvents(router.engine().events_run());
  RecoverySummary s;
  Accumulate(health, kind, &s);
  s.invariants_ok = RouterInvariants::CheckAll(router).ok();
  return s;
}

// Pentium hangs need host-bound load: §3.5.1 infinite-FIFO ports with a
// Pentium share of the traffic.
RecoverySummary RunPentiumRecovery() {
  FaultPlan plan;
  plan.pentium_hang_mean_ps = 4 * kPsPerMs;
  plan.pentium_hang_ps = 1500 * kPsPerUs;
  RouterConfig cfg;
  cfg.fault_plan = plan;
  cfg.port_mode = PortMode::kInfiniteFifo;
  cfg.enable_strongarm = true;
  cfg.enable_pentium = true;
  cfg.synthetic_pentium_fraction = 0.3;
  Router router(std::move(cfg));
  bench::AddDefaultRoutes(router);
  const int idx = router.pe_forwarders().Register(std::make_unique<FixedCostForwarder>("svc", 100));
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kPentium;
  req.native_index = idx;
  req.expected_pps = 100'000;
  router.Install(req);
  router.Start();
  HealthMonitor health(router);
  router.RunForMs(20.0);
  bench::RecordEvents(router.engine().events_run());
  RecoverySummary s;
  Accumulate(health, RecoveryEvent::Kind::kPentiumDegrade, &s);
  s.invariants_ok = RouterInvariants::CheckAll(router).ok();
  return s;
}

// RecoveryChaos burst, then disarm and measure path A: the rate must return
// to the fault-free baseline. Returns {ratio, invariants_ok, health line}.
struct ChaosRecovery {
  double ratio = 0;
  bool invariants_ok = false;
  std::string health_line;
};

ChaosRecovery RunChaosRecovery(uint64_t seed) {
  auto run = [seed](bool faulty, std::string* health_line) {
    RouterConfig cfg;
    if (faulty) {
      cfg.fault_plan = FaultPlan::RecoveryChaos(seed);
    }
    Router router(std::move(cfg));
    bench::AddDefaultRoutes(router);
    router.WarmRouteCache(32);
    router.Start();
    HealthMonitor health(router);
    std::vector<std::unique_ptr<TrafficGen>> gens;
    constexpr double kTrafficMs = 30.0;
    for (int p = 0; p < 8; ++p) {
      TrafficSpec spec;
      spec.rate_pps = 120'000;
      spec.dst_spread = 16;
      gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                  static_cast<uint64_t>(40 + p)));
      gens.back()->Start(static_cast<SimTime>(kTrafficMs * kPsPerMs));
    }
    router.RunForMs(15.0);  // fault burst (or plain warmup)
    if (faulty && router.fault_injector() != nullptr) {
      router.fault_injector()->set_armed(false);
    }
    router.RunForMs(3.0);  // recovery grace
    router.StartMeasurement();
    router.RunForMs(10.0);
    bench::RecordEvents(router.engine().events_run());
    if (health_line != nullptr) {
      *health_line = HealthSummary(router.stats());
    }
    struct {
      double rate;
      bool ok;
    } out{router.ForwardingRateMpps(), RouterInvariants::CheckAll(router).ok()};
    return out;
  };
  const auto baseline = run(false, nullptr);
  ChaosRecovery r;
  const auto recovered = run(true, &r.health_line);
  r.ratio = baseline.rate > 0 ? recovered.rate / baseline.rate : 0;
  r.invariants_ok = baseline.ok && recovered.ok;
  return r;
}

}  // namespace
}  // namespace npr

int main(int argc, char** argv) {
  using namespace npr;

  // Optional seed (ci/chaos_smoke.sh runs a small matrix): every plan in
  // both suites is re-seeded; every seed must survive.
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 0xfa017ULL;
  bench::SetRunInfo(seed, "chaos+recovery");

  bench::Title("fault injection: forwarding under every shipped plan");
  std::printf("%-14s %12s %10s %9s %13s %11s\n", "plan", "fwd (kpps)", "injected",
              "crashes", "counted drops", "invariants");
  std::printf("%-14s %12s %10s %9s %13s %11s\n", "--------------", "-----------",
              "---------", "--------", "------------", "----------");

  const struct {
    const char* name;
    FaultPlan plan;
  } plans[] = {
      {"none", FaultPlan{}},
      {"memory", FaultPlan::MemoryFaults(seed)},
      {"frame", FaultPlan::FrameFaults(seed)},
      {"crash", FaultPlan::ContextCrashes(seed)},
      {"token", FaultPlan::TokenFaults(seed)},
      {"descriptor", FaultPlan::DescriptorFaults(seed)},
      {"chaos", FaultPlan::Chaos(seed)},
  };

  bool all_ok = true;
  for (const auto& p : plans) {
    const ChaosResult r = RunPlan(p.plan);
    std::printf("%-14s %12.1f %10" PRIu64 " %9" PRIu64 " %13" PRIu64 " %11s\n", p.name,
                r.forwarded_kpps, r.injected, r.crashes, r.counted_drops,
                r.invariants_ok ? "PASS" : "FAIL");
    if (!r.invariants_ok) {
      all_ok = false;
      std::printf("  %s\n", r.report.c_str());
    }
  }
  bench::Note("faults degrade throughput but must never wedge the pipeline,");
  bench::Note("leak a packet from the conservation balance, or corrupt queue state.");

  // --- self-healing: detection and recovery per fault class ---
  // The "paper" column is the repair budget implied by the HealthConfig
  // deadlines (deadline + watchdog granularity; for Pentium hangs, the
  // injected hang length dominates MTTR).
  bench::Title("self-healing: MTTD / MTTR per fault class (health monitor attached)");
  bench::RowHeader();

  FaultPlan token_plan;
  token_plan.seed = seed;
  token_plan.token_lost_p = 5e-5;
  const RecoverySummary token = RunRecovery(token_plan, RecoveryEvent::Kind::kTokenRegen);
  bench::Row("recovery: token regen MTTD", 250.0, token.mttd_us, "us");
  bench::Row("recovery: token regen MTTR", 250.0, token.mttr_us, "us");

  FaultPlan ctx_plan;
  ctx_plan.seed = seed;
  ctx_plan.context_crash_mean_ps = 2 * kPsPerMs;
  ctx_plan.context_restart_ps = 50 * kPsPerUs;
  ctx_plan.restart_lost_p = 1.0;  // only the watchdog can bring contexts back
  const RecoverySummary ctx = RunRecovery(ctx_plan, RecoveryEvent::Kind::kContextRestore);
  bench::Row("recovery: context restore MTTD", 600.0, ctx.mttd_us, "us");
  bench::Row("recovery: context restore MTTR", 600.0, ctx.mttr_us, "us");

  const RecoverySummary pe = RunPentiumRecovery();
  bench::Row("recovery: pentium degrade MTTD", 350.0, pe.mttd_us, "us");
  bench::Row("recovery: pentium degrade MTTR", 2500.0, pe.mttr_us, "us");

  const ChaosRecovery chaos = RunChaosRecovery(seed);
  bench::Row("recovery: path-A rate ratio after chaos", 1.0, chaos.ratio, "x");

  std::printf("  events recovered: token %d, context %d, pentium %d (%d still degraded)\n",
              token.recovered, ctx.recovered, pe.recovered, pe.unrecovered);
  std::printf("  %s\n", chaos.health_line.c_str());
  bench::Note("MTTD = fault to watchdog detection; MTTR = fault to service restored.");
  bench::Note("the ratio row is path-A throughput after the chaos burst ends vs fault-free.");

  // Permanent stalls, post-recovery invariant violations, or a dead class
  // fail the bench; ci/chaos_smoke.sh additionally holds the JSON rows to
  // their budgets.
  all_ok = all_ok && token.invariants_ok && ctx.invariants_ok && pe.invariants_ok &&
           chaos.invariants_ok;
  all_ok = all_ok && token.recovered > 0 && ctx.recovered > 0 && pe.recovered > 0;
  all_ok = all_ok && chaos.ratio >= 0.9;

  bench::EmitJson("fault_chaos");
  return all_ok ? 0 : 1;
}
