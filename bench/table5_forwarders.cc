// Table 5: cycle, memory, and register requirements of the example data
// forwarders (§4.4), from static analysis of the actual VRP programs the
// admission controller would inspect.

#include <set>

#include "bench/bench_util.h"
#include "src/forwarders/vrp_programs.h"
#include "src/vrp/verifier.h"

namespace npr {
namespace {

struct Analysis {
  uint32_t state_bytes_touched = 0;  // Table 5's "SRAM Read/Write (bytes)"
  uint32_t register_ops = 0;         // Table 5's "Register Operations"
  VrpCost worst;
  uint32_t instructions = 0;
};

Analysis Analyze(const VrpProgram& program) {
  Analysis a;
  std::set<int32_t> state_offsets;
  for (const VrpInstr& in : program.code) {
    if (in.op == VrpOp::kLdSram || in.op == VrpOp::kStSram) {
      state_offsets.insert(in.imm);
    } else {
      ++a.register_ops;
    }
  }
  a.state_bytes_touched = static_cast<uint32_t>(state_offsets.size()) * 4;
  auto v = VerifyProgram(program);
  a.worst = v.worst_case;
  a.instructions = v.instructions;
  return a;
}

void Report(const std::string& name, const VrpProgram& program, double paper_bytes,
            double paper_ops) {
  Analysis a = Analyze(program);
  bench::Row(name + ": SRAM read/write", paper_bytes, a.state_bytes_touched, "B");
  bench::Row(name + ": register operations", paper_ops, a.register_ops, "ops");
  std::printf("%-44s worst case: %u cycles, %u SRAM transfers, %u hashes, %u ISTORE slots\n",
              "", a.worst.cycles, a.worst.sram_transfers(), a.worst.hashes, a.instructions);
}

}  // namespace
}  // namespace npr

int main() {
  using namespace npr;
  using namespace npr::bench;

  Title("Table 5 — requirements of example data forwarders (static analysis)");
  RowHeader();
  Report("TCP splicer", BuildTcpSplicer(), 24, 45);
  Report("Wavelet dropper", BuildWaveletDropper(), 8, 28);
  Report("ACK monitor", BuildAckMonitor(), 12, 15);
  Report("SYN monitor", BuildSynMonitor(), 4, 5);  // +protocol guard (see EXPERIMENTS.md)
  Report("Port filter", BuildPortFilter(), 20, 26);
  Report("IP (minimal)", BuildIpMinimal(), 24, 32);
  Note("'SRAM bytes' = distinct flow-state words the program touches;");
  Note("'register ops' = non-SRAM instructions. All fit the 240-cycle /");
  Note("24-transfer / 3-hash VRP budget and the 650-slot ISTORE region (§4.3).");

  Title("Admission check against the prototype VRP budget");
  const VrpBudget budget = VrpBudget::Prototype();
  for (auto [name, program] :
       std::vector<std::pair<std::string, VrpProgram>>{{"tcp-splicer", BuildTcpSplicer()},
                                                       {"wavelet", BuildWaveletDropper()},
                                                       {"ack-monitor", BuildAckMonitor()},
                                                       {"syn-monitor", BuildSynMonitor()},
                                                       {"port-filter", BuildPortFilter()},
                                                       {"ip-minimal", BuildIpMinimal()}}) {
    auto v = VerifyProgram(program);
    std::printf("  %-14s %s (worst %3u cy / %2u transfers)\n", name.c_str(),
                v.ok && budget.Admits(v.worst_case) ? "ADMITTED" : "REJECTED",
                v.worst_case.cycles, v.worst_case.sram_transfers());
  }
  bench::EmitJson("table5_forwarders");
  return 0;
}
