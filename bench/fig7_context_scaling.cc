// Figure 7: maximum packet rates achievable by the input and output
// processes running independently, versus the number of MicroEngine
// contexts. Only the minimum number of MicroEngines is used for each point
// (the source of the paper's "dent"); input or output contexts run
// exclusively, never both.

#include "bench/bench_util.h"

namespace npr {
namespace {

double InputPoint(int contexts) {
  RouterConfig cfg = bench::InfiniteFifoConfig();
  cfg.input_contexts_override = contexts;
  cfg.output_contexts_override = 0;
  cfg.magic_drain = true;
  return bench::RunRate(std::move(cfg));
}

double OutputPoint(int contexts) {
  RouterConfig cfg = bench::InfiniteFifoConfig();
  cfg.input_contexts_override = 0;
  cfg.output_contexts_override = contexts;
  cfg.output_fake_data = true;
  Router router(std::move(cfg));
  bench::AddDefaultRoutes(router);
  router.Start();
  return bench::MeasureMpps(router);
}

}  // namespace
}  // namespace npr

int main() {
  using namespace npr;
  using namespace npr::bench;

  Title("Figure 7 — stage rates vs MicroEngine contexts (Mpps, stage in isolation)");
  std::printf("%10s %14s %14s\n", "contexts", "input-only", "output-only");
  for (int contexts : {1, 2, 3, 4, 8, 12, 16, 20, 24}) {
    std::printf("%10d %14.3f %14.3f\n", contexts, InputPoint(contexts), OutputPoint(contexts));
  }
  Note("expected shape: output scales almost linearly with added engines;");
  Note("input gains little beyond 16 contexts — serialized access to the DMA");
  Note("state machine (the token ring) dominates (§3.5.1).");
  Note("the dip comes from packing each point onto the minimum number of MEs.");
  bench::EmitJson("fig7_context_scaling");
  return 0;
}
