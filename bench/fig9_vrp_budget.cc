// Figure 9: number of VRP code blocks that can run at different line
// speeds. Three block flavors, as in the paper: 10 register instructions,
// one 4-byte SRAM read, or both combined. The paper's calibration point:
// at 1 Mpps the VRP affords ~32 combined blocks.

#include "bench/bench_util.h"

namespace npr {
namespace {

double RateWithBlocks(uint32_t reg_blocks, uint32_t sram_blocks) {
  RouterConfig cfg = bench::InfiniteFifoConfig();
  cfg.output_contexts_override = 0;  // input-side budget experiment
  cfg.magic_drain = true;
  cfg.vrp_blocks_reg = reg_blocks;
  cfg.vrp_blocks_sram = sram_blocks;
  return bench::RunRate(std::move(cfg), 2.0, 8.0);
}

}  // namespace
}  // namespace npr

int main() {
  using namespace npr;
  using namespace npr::bench;

  Title("Figure 9 — supportable line speed vs VRP blocks per MP (Mpps)");
  std::printf("%8s %16s %16s %16s\n", "blocks", "10 reg instr", "4B SRAM read", "combined");
  double combined_at_32 = 0;
  for (int blocks : {0, 4, 8, 16, 24, 32, 48, 64}) {
    const double reg = RateWithBlocks(static_cast<uint32_t>(blocks), 0);
    const double sram = RateWithBlocks(0, static_cast<uint32_t>(blocks));
    const double both =
        RateWithBlocks(static_cast<uint32_t>(blocks), static_cast<uint32_t>(blocks));
    if (blocks == 32) {
      combined_at_32 = both;
    }
    std::printf("%8d %16.3f %16.3f %16.3f\n", blocks, reg, sram, both);
  }

  Title("Calibration point (§4.2)");
  RowHeader();
  Row("rate at 32 combined blocks", 1.0, combined_at_32);
  Note("the paper reads Figure 9 as: 'at an aggregate forwarding rate of");
  Note("1 Mpps, the VRP has a budget of 32 blocks' of 10 reg ops + 4 B SRAM.");
  bench::EmitJson("fig9_vrp_budget");
  return 0;
}
