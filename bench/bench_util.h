// Shared helpers for the reproduction benches: canonical configurations,
// measurement runs, and paper-vs-measured table formatting.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/router.h"
#include "src/net/traffic_gen.h"
#include "src/obs/observer.h"

namespace npr {
namespace bench {

// Heap allocations performed by this process so far (bench/alloc_count.cc;
// 0 when the counting interposers are compiled out — Debug or sanitized
// builds). Published as the "allocs" field of BENCH_<name>.json.
uint64_t AllocCount();

// --- machine-readable results (BENCH_<name>.json) ---
//
// Row() records every paper-vs-measured row as it is printed; EmitJson()
// dumps them plus wall-clock time and simulation-event throughput so CI
// (ci/perf_smoke.sh) can check bands without scraping stdout.

struct RowRec {
  std::string label;
  double paper = 0.0;
  double measured = 0.0;
  std::string unit;
};

// One latency distribution (per path or per stage), in nanoseconds.
struct LatencyRec {
  std::string label;
  uint64_t count = 0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  double max_ns = 0.0;
};

// One engine's cycle accounting from the profiler.
struct EngineCyclesRec {
  int engine = 0;
  uint64_t compute_cycles = 0;
  double wait_us[kWaitClassCount] = {};
};

struct JsonState {
  std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
  std::vector<RowRec> rows;
  std::vector<LatencyRec> path_latency;
  std::vector<LatencyRec> stage_latency;
  std::vector<EngineCyclesRec> engine_cycles;
  uint64_t events_run = 0;
  uint64_t steady_allocs = 0;
  uint64_t seed = 0;
  bool has_run_info = false;
  std::string fault_plan;
  std::string profiler_report;
};

inline JsonState& State() {
  static JsonState state;
  return state;
}

// Adds simulation events executed (EventQueue::events_run deltas) to the
// bench total. MeasureMpps does this automatically; benches that drive the
// engine directly call it themselves.
inline void RecordEvents(uint64_t events) { State().events_run += events; }

// Records the seed and fault-plan name a chaos/failover bench ran under, so
// BENCH_*.json rows can be tied back to the exact deterministic run that
// produced them (and replayed bit-identically).
inline void SetRunInfo(uint64_t seed, const std::string& fault_plan) {
  State().seed = seed;
  State().fault_plan = fault_plan;
  State().has_run_info = true;
}

// The §3.5.1 measurement setup: FIFO-recycling "infinitely fast ports",
// MicroEngines only.
inline RouterConfig InfiniteFifoConfig() {
  RouterConfig cfg;
  cfg.port_mode = PortMode::kInfiniteFifo;
  cfg.enable_pentium = false;
  cfg.enable_strongarm = false;
  return cfg;
}

inline void AddDefaultRoutes(Router& router) {
  for (int p = 0; p < router.num_ports(); ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(8);
}

// Runs warmup + measurement; returns the forwarding rate in Mpps.
inline double MeasureMpps(Router& router, double warm_ms = 2.0, double measure_ms = 10.0) {
  const uint64_t events_before = router.engine().events_run();
  router.RunForMs(warm_ms);
  router.StartMeasurement();
  // Steady-state heap allocations: what the measurement window costs after
  // construction and warmup are done. The pooled data path holds this near
  // zero; "steady_allocs" in BENCH_*.json is the sum over all runs.
  const uint64_t allocs_before = AllocCount();
  router.RunForMs(measure_ms);
  State().steady_allocs += AllocCount() - allocs_before;
  RecordEvents(router.engine().events_run() - events_before);
  return router.ForwardingRateMpps();
}

// Builds, routes, starts, and measures one configuration.
inline double RunRate(RouterConfig cfg, double warm_ms = 2.0, double measure_ms = 10.0) {
  Router router(std::move(cfg));
  AddDefaultRoutes(router);
  router.Start();
  return MeasureMpps(router, warm_ms, measure_ms);
}

// --- output formatting ---

inline void Title(const std::string& text) {
  std::printf("\n=== %s ===\n", text.c_str());
}

inline void RowHeader() {
  std::printf("%-44s %12s %12s %8s\n", "configuration", "paper", "measured", "delta");
  std::printf("%-44s %12s %12s %8s\n", "--------------------------------------------",
              "-----------", "-----------", "-------");
}

inline void Row(const std::string& label, double paper, double measured,
                const char* unit = "Mpps") {
  const double delta = paper != 0 ? (measured - paper) / paper * 100.0 : 0.0;
  std::printf("%-44s %8.3f %-4s %8.3f %-4s %+6.1f%%\n", label.c_str(), paper, unit, measured,
              unit, delta);
  State().rows.push_back(RowRec{label, paper, measured, unit});
}

inline void Note(const std::string& text) { std::printf("  note: %s\n", text.c_str()); }

// --- observability sections ---
//
// RecordObserver() folds an attached Observer into the bench output:
// per-path and per-stage latency percentiles plus the profiler's per-engine
// cycle accounting. Distributions with no samples are skipped, so a bench
// that never attached an observer (or a NPR_OBS=OFF build, where the hook
// sites compile away) emits exactly the same stdout and JSON as before.

inline void AddLatencyRec(std::vector<LatencyRec>* out, const std::string& label,
                          const Histogram& h) {
  if (h.count() == 0) {
    return;
  }
  out->push_back(LatencyRec{label, h.count(), h.Percentile(50), h.Percentile(95),
                            h.Percentile(99), static_cast<double>(h.max())});
}

inline void RecordObserver(const Observer& obs, int num_engines = 6) {
  JsonState& st = State();
  for (int p = 0; p < kPathKindCount; ++p) {
    AddLatencyRec(&st.path_latency,
                  std::string("path_") + PathKindName(static_cast<PathKind>(p)),
                  obs.path_latency(static_cast<PathKind>(p)));
  }
  for (int h = 0; h < kHopKindCount; ++h) {
    AddLatencyRec(&st.stage_latency, HopKindName(static_cast<HopKind>(h)),
                  obs.hop_latency(static_cast<HopKind>(h)));
  }
  const CycleProfiler& prof = obs.profiler();
  for (int me = 0; me < num_engines; ++me) {
    EngineCyclesRec rec;
    rec.engine = me;
    rec.compute_cycles = prof.EngineComputeCycles(static_cast<uint8_t>(me));
    uint64_t any_wait = 0;
    for (int w = 0; w < kWaitClassCount; ++w) {
      const uint64_t ps = prof.EngineWaitPs(static_cast<uint8_t>(me), static_cast<WaitClass>(w));
      rec.wait_us[w] = static_cast<double>(ps) / kPsPerUs;
      any_wait += ps;
    }
    if (rec.compute_cycles != 0 || any_wait != 0) {
      st.engine_cycles.push_back(rec);
    }
  }

  if (!st.engine_cycles.empty()) {
    st.profiler_report = prof.Report();
  }
}

// Prints the recorded observability sections (called from EmitJson so they
// land after the paper-vs-measured tables). Silent when nothing was
// recorded.
inline void PrintObserverSections() {
  const JsonState& st = State();
  if (!st.path_latency.empty() || !st.stage_latency.empty()) {
    std::printf("\n%-24s %10s %10s %10s %10s %10s\n", "latency (ns)", "count", "p50", "p95",
                "p99", "max");
    for (const LatencyRec& r : st.path_latency) {
      std::printf("%-24s %10llu %10.0f %10.0f %10.0f %10.0f\n", r.label.c_str(),
                  static_cast<unsigned long long>(r.count), r.p50_ns, r.p95_ns, r.p99_ns,
                  r.max_ns);
    }
    for (const LatencyRec& r : st.stage_latency) {
      std::printf("%-24s %10llu %10.0f %10.0f %10.0f %10.0f\n", r.label.c_str(),
                  static_cast<unsigned long long>(r.count), r.p50_ns, r.p95_ns, r.p99_ns,
                  r.max_ns);
    }
  }
  if (!st.profiler_report.empty()) {
    std::printf("%s", st.profiler_report.c_str());
  }
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

// Writes BENCH_<name>.json in the current directory: every Row() emitted so
// far, wall-clock time since the process started, and events/sec through
// the simulation core. Call once, at the end of main().
inline void EmitJson(const std::string& name) {
  PrintObserverSections();
  const JsonState& st = State();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - st.start).count();
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n", JsonEscape(name).c_str());
  if (st.has_run_info) {
    std::fprintf(f, "  \"seed\": %llu,\n", static_cast<unsigned long long>(st.seed));
    std::fprintf(f, "  \"fault_plan\": \"%s\",\n", JsonEscape(st.fault_plan).c_str());
  }
  std::fprintf(f, "  \"wall_seconds\": %.3f,\n", wall);
  std::fprintf(f, "  \"events_run\": %llu,\n", static_cast<unsigned long long>(st.events_run));
  std::fprintf(f, "  \"events_per_sec\": %.0f,\n",
               wall > 0 ? static_cast<double>(st.events_run) / wall : 0.0);
  std::fprintf(f, "  \"allocs\": %llu,\n", static_cast<unsigned long long>(AllocCount()));
  std::fprintf(f, "  \"steady_allocs\": %llu,\n",
               static_cast<unsigned long long>(st.steady_allocs));
  // Observability sections: present only when an attached Observer actually
  // collected samples, so reference output is unchanged otherwise.
  const auto emit_latency = [f](const char* key, const std::vector<LatencyRec>& recs) {
    if (recs.empty()) {
      return;
    }
    std::fprintf(f, "  \"%s\": [\n", key);
    for (size_t i = 0; i < recs.size(); ++i) {
      const LatencyRec& r = recs[i];
      std::fprintf(f,
                   "    {\"label\": \"%s\", \"count\": %llu, \"p50_ns\": %.1f, "
                   "\"p95_ns\": %.1f, \"p99_ns\": %.1f, \"max_ns\": %.1f}%s\n",
                   JsonEscape(r.label).c_str(), static_cast<unsigned long long>(r.count),
                   r.p50_ns, r.p95_ns, r.p99_ns, r.max_ns, i + 1 < recs.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
  };
  emit_latency("path_latency", st.path_latency);
  emit_latency("stage_latency", st.stage_latency);
  if (!st.engine_cycles.empty()) {
    std::fprintf(f, "  \"engine_cycles\": [\n");
    for (size_t i = 0; i < st.engine_cycles.size(); ++i) {
      const EngineCyclesRec& r = st.engine_cycles[i];
      std::fprintf(f, "    {\"engine\": %d, \"compute_cycles\": %llu", r.engine,
                   static_cast<unsigned long long>(r.compute_cycles));
      for (int w = 0; w < kWaitClassCount; ++w) {
        std::fprintf(f, ", \"wait_%s_us\": %.3f", WaitClassName(static_cast<WaitClass>(w)),
                     r.wait_us[w]);
      }
      std::fprintf(f, "}%s\n", i + 1 < st.engine_cycles.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
  }
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < st.rows.size(); ++i) {
    const RowRec& r = st.rows[i];
    const double delta = r.paper != 0 ? (r.measured - r.paper) / r.paper * 100.0 : 0.0;
    std::fprintf(f,
                 "    {\"label\": \"%s\", \"paper\": %.6g, \"measured\": %.6g, "
                 "\"unit\": \"%s\", \"delta_pct\": %.2f}%s\n",
                 JsonEscape(r.label).c_str(), r.paper, r.measured, JsonEscape(r.unit).c_str(),
                 delta, i + 1 < st.rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace bench
}  // namespace npr

#endif  // BENCH_BENCH_UTIL_H_
