// Shared helpers for the reproduction benches: canonical configurations,
// measurement runs, and paper-vs-measured table formatting.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/router.h"
#include "src/net/traffic_gen.h"

namespace npr {
namespace bench {

// The §3.5.1 measurement setup: FIFO-recycling "infinitely fast ports",
// MicroEngines only.
inline RouterConfig InfiniteFifoConfig() {
  RouterConfig cfg;
  cfg.port_mode = PortMode::kInfiniteFifo;
  cfg.enable_pentium = false;
  cfg.enable_strongarm = false;
  return cfg;
}

inline void AddDefaultRoutes(Router& router) {
  for (int p = 0; p < router.num_ports(); ++p) {
    router.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  router.WarmRouteCache(8);
}

// Runs warmup + measurement; returns the forwarding rate in Mpps.
inline double MeasureMpps(Router& router, double warm_ms = 2.0, double measure_ms = 10.0) {
  router.RunForMs(warm_ms);
  router.StartMeasurement();
  router.RunForMs(measure_ms);
  return router.ForwardingRateMpps();
}

// Builds, routes, starts, and measures one configuration.
inline double RunRate(RouterConfig cfg, double warm_ms = 2.0, double measure_ms = 10.0) {
  Router router(std::move(cfg));
  AddDefaultRoutes(router);
  router.Start();
  return MeasureMpps(router, warm_ms, measure_ms);
}

// --- output formatting ---

inline void Title(const std::string& text) {
  std::printf("\n=== %s ===\n", text.c_str());
}

inline void RowHeader() {
  std::printf("%-44s %12s %12s %8s\n", "configuration", "paper", "measured", "delta");
  std::printf("%-44s %12s %12s %8s\n", "--------------------------------------------",
              "-----------", "-----------", "-------");
}

inline void Row(const std::string& label, double paper, double measured,
                const char* unit = "Mpps") {
  const double delta = paper != 0 ? (measured - paper) / paper * 100.0 : 0.0;
  std::printf("%-44s %8.3f %-4s %8.3f %-4s %+6.1f%%\n", label.c_str(), paper, unit, measured,
              unit, delta);
}

inline void Note(const std::string& text) { std::printf("  note: %s\n", text.c_str()); }

}  // namespace bench
}  // namespace npr

#endif  // BENCH_BENCH_UTIL_H_
