// Host-side micro-benchmarks (google-benchmark): real wall-clock costs of
// the library's hot algorithms, independent of the simulation clock.

#include <benchmark/benchmark.h>

#include "src/core/packet_queue.h"
#include "src/ixp/hash_unit.h"
#include "src/net/checksum.h"
#include "src/net/packet.h"
#include "src/route/route_table.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/vrp/interpreter.h"

#include "src/forwarders/vrp_programs.h"

namespace npr {
namespace {

void BM_CpeLookup(benchmark::State& state) {
  RouteTable table;
  Rng rng(1);
  const int prefixes = static_cast<int>(state.range(0));
  for (int i = 0; i < prefixes; ++i) {
    table.AddRoute(Prefix::Make(static_cast<uint32_t>(rng.Next()),
                                static_cast<uint8_t>(rng.Range(8, 28))),
                   RouteEntry{static_cast<uint8_t>(i % 8), PortMac(0)});
  }
  uint32_t ip = 0;
  for (auto _ : state) {
    ip = ip * 1664525u + 1013904223u;
    benchmark::DoNotOptimize(table.Lookup(ip));
  }
}
BENCHMARK(BM_CpeLookup)->Arg(100)->Arg(1000)->Arg(10000);

void BM_InetChecksum(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InetChecksum(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InetChecksum)->Arg(20)->Arg(64)->Arg(1500);

void BM_IncrementalTtlUpdate(benchmark::State& state) {
  Ipv4Header h;
  h.ttl = 200;
  uint8_t buf[20];
  h.Write(buf);
  for (auto _ : state) {
    buf[8] = 200;
    benchmark::DoNotOptimize(DecrementTtlInPlace(buf));
  }
}
BENCHMARK(BM_IncrementalTtlUpdate);

void BM_BuildPacket(benchmark::State& state) {
  PacketSpec spec;
  spec.protocol = kIpProtoTcp;
  spec.frame_bytes = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPacket(spec));
  }
}
BENCHMARK(BM_BuildPacket)->Arg(64)->Arg(1500);

void BM_HardwareHash(benchmark::State& state) {
  HashUnit hash;
  uint64_t v = 1;
  for (auto _ : state) {
    v = hash.Hash64(v);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_HardwareHash);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.Schedule(i * 10, [] {});
    }
    q.RunAll();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_VrpInterpreter(benchmark::State& state) {
  BackingStore sram("sram", 4096);
  HashUnit hash;
  VrpInterpreter interp(sram, hash);
  const VrpProgram program = BuildAckMonitor();
  PacketSpec spec;
  spec.protocol = kIpProtoTcp;
  spec.tcp_flags = 0x10;
  Packet p = BuildPacket(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.Run(program, p.bytes().first(64), 256, nullptr));
  }
}
BENCHMARK(BM_VrpInterpreter);

void BM_PacketQueuePushPop(benchmark::State& state) {
  BackingStore sram("sram", 1 << 16);
  BackingStore scratch("scratch", 64);
  PacketQueue queue(sram, scratch, 0, 0, 1024, 0, 0, 2048);
  PacketDescriptor d;
  d.buffer_addr = 2048;
  for (auto _ : state) {
    queue.Push(d);
    benchmark::DoNotOptimize(queue.Pop());
  }
}
BENCHMARK(BM_PacketQueuePushPop);

}  // namespace
}  // namespace npr

BENCHMARK_MAIN();
