// Design-choice ablations called out in DESIGN.md.
//
// 1. Token rotation order (§3.2.2): the paper rotates the token so a
//    context always hands it to a context on another MicroEngine. The
//    naive order (all contexts of one engine, then the next) makes the
//    next holder likelier to be stuck behind a sibling on the same busy
//    pipeline.
// 2. Buffer management (§3.2.3): circular ring (free, but packets can be
//    overwritten after one lap) vs. per-port stack pool (explicit
//    lifetimes at an extra SRAM push/pop per packet).

#include "bench/bench_util.h"

namespace npr {
namespace {

double InputRate(bool interleaved) {
  RouterConfig cfg = bench::InfiniteFifoConfig();
  cfg.output_contexts_override = 0;
  cfg.magic_drain = true;
  cfg.token_ring_interleaved = interleaved;
  return bench::RunRate(std::move(cfg));
}

struct BufferResult {
  double mpps;
  uint64_t lost_overwritten;
  uint64_t dropped_no_buffer;
};

BufferResult BufferRun(bool stack_pool, uint32_t num_buffers) {
  RouterConfig cfg = bench::InfiniteFifoConfig();
  cfg.use_stack_buffer_pool = stack_pool;
  cfg.hw.num_buffers = num_buffers;
  Router router(std::move(cfg));
  bench::AddDefaultRoutes(router);
  router.Start();
  BufferResult r;
  r.mpps = bench::MeasureMpps(router);
  r.lost_overwritten = router.stats().lost_overwritten;
  r.dropped_no_buffer = router.stats().dropped_no_buffer;
  return r;
}

}  // namespace
}  // namespace npr

int main() {
  using namespace npr;
  using namespace npr::bench;

  Title("Ablation A — token rotation order (§3.2.2), input-only rate");
  RowHeader();
  const double interleaved = InputRate(true);
  const double naive = InputRate(false);
  Row("interleaved across MicroEngines (paper)", 3.47, interleaved);
  Row("naive (engine-major) rotation", 0, naive);
  std::printf("  interleaving gain: %+.1f%%\n", (interleaved / naive - 1.0) * 100);
  Note("with engine-major rotation the next token holder is often a sibling");
  Note("of the busy pipeline that just released it (§3.2.2's rationale).");

  Title("Ablation B — circular ring vs stack buffer pool (§3.2.3)");
  std::printf("%-34s %10s %14s %14s\n", "configuration", "Mpps", "lap losses",
              "alloc fails");
  for (uint32_t buffers : {8192u, 64u}) {
    const auto ring = BufferRun(false, buffers);
    const auto pool = BufferRun(true, buffers);
    std::printf("%-34s %10.3f %14llu %14llu\n",
                ("circular ring, " + std::to_string(buffers) + " buffers").c_str(), ring.mpps,
                static_cast<unsigned long long>(ring.lost_overwritten),
                static_cast<unsigned long long>(ring.dropped_no_buffer));
    std::printf("%-34s %10.3f %14llu %14llu\n",
                ("stack pool, " + std::to_string(buffers) + " buffers").c_str(), pool.mpps,
                static_cast<unsigned long long>(pool.lost_overwritten),
                static_cast<unsigned long long>(pool.dropped_no_buffer));
  }
  Note("the ring silently overwrites live packets when buffers run short (lap");
  Note("losses); the pool converts that to explicit allocation failures and a");
  Note("small rate cost from the extra SRAM push/pop — the §3.2.3 trade the");
  Note("paper describes and declined.");
  bench::EmitJson("ablation_design");
  return 0;
}
