// §6 (future work, built here): scaling the router to four Pentium/IXP
// pairs joined by a gigabit switch. Measures aggregate external goodput as
// the remote-traffic share grows — the paper's stated concern being that
// the internal link consumes RI capacity that would otherwise feed the VRP.

#include "bench/bench_util.h"
#include "src/cluster/cluster_router.h"

namespace npr {
namespace {

struct Point {
  double remote_fraction;
  double goodput_kpps;
  uint64_t fabric_frames;
  uint64_t drops;
};

Point RunCluster(double remote_fraction) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  ClusterRouter cluster(std::move(cfg));
  cluster.InstallClusterRoutes();

  uint64_t delivered = 0;
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    for (int p = 0; p < cluster.external_ports_per_node(); ++p) {
      cluster.node(k).port(p).SetSink([&delivered](Packet&&) { ++delivered; });
    }
  }
  cluster.Start();

  // Each node's port 0 takes 141 Kpps; `remote_fraction` of destinations
  // live behind other nodes.
  Rng rng(7);
  struct Source {
    int node;
    uint64_t sent = 0;
  };
  std::vector<Source> sources;
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    sources.push_back({k});
  }
  const SimTime gap = static_cast<SimTime>(kPsPerSec / 141'000);
  std::function<void(size_t)> pump = [&](size_t i) {
    Source& src = sources[i];
    if (cluster.engine().now() > 24 * kPsPerMs) {
      return;
    }
    // Pick a local or remote external prefix.
    int g;
    if (rng.Chance(remote_fraction)) {
      int other;
      do {
        other = static_cast<int>(rng.Uniform(static_cast<uint64_t>(cluster.num_nodes())));
      } while (other == src.node);
      g = other * cluster.external_ports_per_node() +
          static_cast<int>(rng.Uniform(static_cast<uint64_t>(cluster.external_ports_per_node())));
    } else {
      g = src.node * cluster.external_ports_per_node() + 1 +
          static_cast<int>(
              rng.Uniform(static_cast<uint64_t>(cluster.external_ports_per_node() - 1)));
    }
    PacketSpec spec;
    spec.dst_ip = cluster.ExternalDstIp(g, static_cast<uint16_t>(1 + rng.Uniform(16)));
    spec.src_ip = SrcIpForPort(static_cast<uint8_t>(src.node), 1);
    cluster.node(src.node).port(0).InjectFromWire(BuildPacket(spec));
    ++src.sent;
    cluster.engine().ScheduleIn(gap, [&pump, i] { pump(i); });
  };
  for (size_t i = 0; i < sources.size(); ++i) {
    pump(i);
  }

  cluster.RunForMs(4.0);
  cluster.StartMeasurement();
  const uint64_t delivered_before = delivered;
  const SimTime t0 = cluster.engine().now();
  cluster.RunForMs(20.0);

  Point point;
  point.remote_fraction = remote_fraction;
  const double seconds =
      static_cast<double>(cluster.engine().now() - t0) / static_cast<double>(kPsPerSec);
  point.goodput_kpps = static_cast<double>(delivered - delivered_before) / seconds / 1e3;
  point.fabric_frames = cluster.fabric().forwarded();
  point.drops = cluster.TotalDrops();
  bench::RecordEvents(cluster.engine().events_run());
  return point;
}

}  // namespace
}  // namespace npr

int main() {
  using namespace npr;
  using namespace npr::bench;

  Title("§6 extension — 4-node cluster, 4 x 141 Kpps offered, varying remote share");
  std::printf("%14s %16s %16s %10s\n", "remote share", "goodput (Kpps)", "fabric frames",
              "drops");
  for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto p = RunCluster(f);
    std::printf("%14.2f %16.1f %16llu %10llu\n", p.remote_fraction, p.goodput_kpps,
                static_cast<unsigned long long>(p.fabric_frames),
                static_cast<unsigned long long>(p.drops));
  }
  Note("offered aggregate is 564 Kpps of 64 B packets; remote packets cross the");
  Note("gigabit fabric and are forwarded at both the ingress and egress node,");
  Note("doubling their pipeline cost — goodput should hold with zero drops, the");
  Note("paper's premise for the multi-chassis design (§6).");
  bench::EmitJson("cluster_scale");
  return 0;
}
