// §6 (future work, built here): scaling the router to four Pentium/IXP
// pairs joined by a gigabit switch. Measures aggregate external goodput as
// the remote-traffic share grows — the paper's stated concern being that
// the internal link consumes RI capacity that would otherwise feed the VRP.
//
// A second section runs an 8-node cluster through the sharded engine
// (ClusterConfig::fabric_latency_ps > 0, docs/perf.md) at several thread
// counts: same workload per thread count, wall-clock and speedup rows, and
// a fingerprint check that every run is bit-identical. `--threads=N` caps
// the thread ladder (default 8); ci/perf_smoke.sh holds the speedup row to
// a floor when the host has enough cores.

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "bench/bench_util.h"
#include "src/cluster/cluster_router.h"
#include "src/fault/fault_plan.h"

namespace npr {
namespace {

struct Point {
  double remote_fraction;
  double goodput_kpps;
  uint64_t fabric_frames;
  uint64_t drops;
};

Point RunCluster(double remote_fraction) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  ClusterRouter cluster(std::move(cfg));
  cluster.InstallClusterRoutes();

  uint64_t delivered = 0;
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    for (int p = 0; p < cluster.external_ports_per_node(); ++p) {
      cluster.node(k).port(p).SetSink([&delivered](Packet&&) { ++delivered; });
    }
  }
  cluster.Start();

  // Each node's port 0 takes 141 Kpps; `remote_fraction` of destinations
  // live behind other nodes.
  Rng rng(7);
  struct Source {
    int node;
    uint64_t sent = 0;
  };
  std::vector<Source> sources;
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    sources.push_back({k});
  }
  const SimTime gap = static_cast<SimTime>(kPsPerSec / 141'000);
  std::function<void(size_t)> pump = [&](size_t i) {
    Source& src = sources[i];
    if (cluster.engine().now() > 24 * kPsPerMs) {
      return;
    }
    // Pick a local or remote external prefix.
    int g;
    if (rng.Chance(remote_fraction)) {
      int other;
      do {
        other = static_cast<int>(rng.Uniform(static_cast<uint64_t>(cluster.num_nodes())));
      } while (other == src.node);
      g = other * cluster.external_ports_per_node() +
          static_cast<int>(rng.Uniform(static_cast<uint64_t>(cluster.external_ports_per_node())));
    } else {
      g = src.node * cluster.external_ports_per_node() + 1 +
          static_cast<int>(
              rng.Uniform(static_cast<uint64_t>(cluster.external_ports_per_node() - 1)));
    }
    PacketSpec spec;
    spec.dst_ip = cluster.ExternalDstIp(g, static_cast<uint16_t>(1 + rng.Uniform(16)));
    spec.src_ip = SrcIpForPort(static_cast<uint8_t>(src.node), 1);
    cluster.node(src.node).port(0).InjectFromWire(BuildPacket(spec));
    ++src.sent;
    cluster.engine().ScheduleIn(gap, [&pump, i] { pump(i); });
  };
  for (size_t i = 0; i < sources.size(); ++i) {
    pump(i);
  }

  cluster.RunForMs(4.0);
  cluster.StartMeasurement();
  const uint64_t delivered_before = delivered;
  const SimTime t0 = cluster.engine().now();
  cluster.RunForMs(20.0);

  Point point;
  point.remote_fraction = remote_fraction;
  const double seconds =
      static_cast<double>(cluster.engine().now() - t0) / static_cast<double>(kPsPerSec);
  point.goodput_kpps = static_cast<double>(delivered - delivered_before) / seconds / 1e3;
  point.fabric_frames = cluster.fabric().forwarded();
  point.drops = cluster.TotalDrops();
  bench::RecordEvents(cluster.engine().events_run());
  return point;
}

// --- sharded mode ---

// One traffic source per node, living on that node's shard and drawing
// from a per-node derived stream. (The legacy section's single shared Rng
// would be a data race under threads > 1, and its draw order would depend
// on the interleaving; per-node streams make the workload identical for
// every thread count.)
struct NodePump {
  ClusterRouter* cluster = nullptr;
  int node = 0;
  Rng rng{0};
  double remote_fraction = 0;
  SimTime gap = 0;
  SimTime stop_at = 0;
  uint64_t sent = 0;

  void Tick() {
    EventQueue& eng = cluster->node_engine(node);
    if (eng.now() > stop_at) {
      return;
    }
    int g;
    if (rng.Chance(remote_fraction)) {
      int other;
      do {
        other = static_cast<int>(rng.Uniform(static_cast<uint64_t>(cluster->num_nodes())));
      } while (other == node);
      g = other * cluster->external_ports_per_node() +
          static_cast<int>(
              rng.Uniform(static_cast<uint64_t>(cluster->external_ports_per_node())));
    } else {
      g = node * cluster->external_ports_per_node() + 1 +
          static_cast<int>(
              rng.Uniform(static_cast<uint64_t>(cluster->external_ports_per_node() - 1)));
    }
    PacketSpec spec;
    spec.dst_ip = cluster->ExternalDstIp(g, static_cast<uint16_t>(1 + rng.Uniform(16)));
    spec.src_ip = SrcIpForPort(static_cast<uint8_t>(node), 1);
    cluster->node(node).port(0).InjectFromWire(BuildPacket(spec));
    ++sent;
    eng.ScheduleIn(gap, [this] { Tick(); });
  }
};

struct ShardedRun {
  double wall_s = 0;
  double goodput_kpps = 0;
  std::string fingerprint;  // must match across thread counts
};

ShardedRun RunSharded(int nodes, int threads, double remote_fraction) {
  constexpr double kWarmMs = 2.0;
  constexpr double kMeasureMs = 8.0;
  constexpr uint64_t kSeed = 0x5ca1edULL;

  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.fabric_latency_ps = 2 * kPsPerUs;  // store-and-forward gigabit switch
  cfg.threads = threads;
  ClusterRouter cluster(std::move(cfg));
  cluster.InstallClusterRoutes();

  // Per-destination-node delivery counters: each is written only by that
  // node's shard, so no locking is needed.
  std::vector<uint64_t> delivered(static_cast<size_t>(nodes), 0);
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    for (int p = 0; p < cluster.external_ports_per_node(); ++p) {
      cluster.node(k).port(p).SetSink(
          [&delivered, k](Packet&&) { ++delivered[static_cast<size_t>(k)]; });
    }
  }
  cluster.Start();

  const SimTime gap = static_cast<SimTime>(kPsPerSec / 141'000);
  const SimTime stop_at = static_cast<SimTime>((kWarmMs + kMeasureMs) * kPsPerMs);
  std::vector<std::unique_ptr<NodePump>> pumps;
  for (int k = 0; k < nodes; ++k) {
    auto pump = std::make_unique<NodePump>();
    pump->cluster = &cluster;
    pump->node = k;
    pump->rng = Rng(FaultPlan::DeriveNodeSeed(kSeed, k));
    pump->remote_fraction = remote_fraction;
    pump->gap = gap;
    pump->stop_at = stop_at;
    pumps.push_back(std::move(pump));
  }
  for (auto& pump : pumps) {
    pump->Tick();
  }

  cluster.RunForMs(kWarmMs);
  const std::vector<uint64_t> at_boundary = delivered;
  const auto t0 = std::chrono::steady_clock::now();
  cluster.RunForMs(kMeasureMs);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  bench::RecordEvents(cluster.TotalEventsRun());

  ShardedRun run;
  run.wall_s = wall;
  uint64_t window = 0;
  for (int k = 0; k < nodes; ++k) {
    window += delivered[static_cast<size_t>(k)] - at_boundary[static_cast<size_t>(k)];
  }
  run.goodput_kpps = static_cast<double>(window) / (kMeasureMs / 1e3) / 1e3;

  // Everything that could diverge under a reordering bug: per-node
  // deliveries and injections, fabric accounting, the global event count,
  // and the final clock.
  std::ostringstream fp;
  for (int k = 0; k < nodes; ++k) {
    fp << "n" << k << ":d=" << delivered[static_cast<size_t>(k)]
       << ",s=" << pumps[static_cast<size_t>(k)]->sent
       << ",fwd=" << cluster.node(k).stats().forwarded << ";";
  }
  fp << "fab=" << cluster.fabric().forwarded() << ",drops=" << cluster.TotalDrops()
     << ",ev=" << cluster.TotalEventsRun() << ",now=" << cluster.now();
  run.fingerprint = fp.str();
  return run;
}

}  // namespace
}  // namespace npr

int main(int argc, char** argv) {
  using namespace npr;
  using namespace npr::bench;

  Title("§6 extension — 4-node cluster, 4 x 141 Kpps offered, varying remote share");
  std::printf("%14s %16s %16s %10s\n", "remote share", "goodput (Kpps)", "fabric frames",
              "drops");
  for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto p = RunCluster(f);
    std::printf("%14.2f %16.1f %16llu %10llu\n", p.remote_fraction, p.goodput_kpps,
                static_cast<unsigned long long>(p.fabric_frames),
                static_cast<unsigned long long>(p.drops));
  }
  Note("offered aggregate is 564 Kpps of 64 B packets; remote packets cross the");
  Note("gigabit fabric and are forwarded at both the ingress and egress node,");
  Note("doubling their pipeline cost — goodput should hold with zero drops, the");
  Note("paper's premise for the multi-chassis design (§6).");

  // --- sharded engine: 8 nodes, 2 µs fabric, thread ladder ---
  int max_threads = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      max_threads = std::atoi(argv[i] + 10);
    }
  }
  if (max_threads < 1) {
    max_threads = 1;
  }
  std::vector<int> ladder;
  for (int t : {1, 2, 4, 8}) {
    if (t <= max_threads) {
      ladder.push_back(t);
    }
  }
  if (ladder.back() != max_threads) {
    ladder.push_back(max_threads);
  }

  Title("sharded engine — 8-node cluster, 2 us fabric latency, 50% remote share");
  std::printf("%10s %12s %16s %14s\n", "threads", "wall (s)", "goodput (Kpps)", "speedup");
  bool deterministic = true;
  double wall_t1 = 0;
  double wall_last = 0;
  std::string fingerprint_t1;
  for (int t : ladder) {
    const ShardedRun run = RunSharded(8, t, 0.5);
    if (t == 1) {
      wall_t1 = run.wall_s;
      fingerprint_t1 = run.fingerprint;
    } else if (run.fingerprint != fingerprint_t1) {
      deterministic = false;
      std::printf("  DIVERGENCE at t=%d:\n    t=1: %s\n    t=%d: %s\n", t,
                  fingerprint_t1.c_str(), t, run.fingerprint.c_str());
    }
    wall_last = run.wall_s;
    std::printf("%10d %12.3f %16.1f %13.2fx\n", t, run.wall_s, run.goodput_kpps,
                wall_t1 > 0 ? wall_t1 / run.wall_s : 0.0);
    char label[64];
    std::snprintf(label, sizeof(label), "sharded wall t=%d", t);
    Row(label, 0, run.wall_s, "s");
    if (t == 1) {
      Row("sharded goodput", 0, run.goodput_kpps, "Kpps");
    }
  }
  Row("sharded threads", 0, static_cast<double>(ladder.back()), "thr");
  Row("sharded speedup", 0, wall_last > 0 ? wall_t1 / wall_last : 0.0, "x");
  Row("sharded deterministic", 1.0, deterministic ? 1.0 : 0.0, "bool");
  Note("the speedup row compares the largest thread count against t=1 on the");
  Note("same sharded configuration; the deterministic row is 1 only if every");
  Note("thread count produced a bit-identical run fingerprint.");

  bench::EmitJson("cluster_scale");
  return deterministic ? 0 : 1;
}
