// Table 3: MicroEngine cycle times to transfer common-sized data blocks
// into and out of the three memories, measured from an idle system by a
// probe context (round trip, as the paper's microbenchmark saw it).

#include "bench/bench_util.h"
#include "src/ixp/ixp1200.h"

namespace npr {
namespace {

struct Probe {
  SimTime start = 0;
  SimTime done = 0;
};

Task MeasureOne(HwContext* ctx, MemoryChannel* ch, uint32_t bytes, bool write, Probe* probe,
                EventQueue* engine) {
  probe->start = engine->now();
  if (write) {
    co_await ctx->Write(*ch, bytes);
  } else {
    co_await ctx->Read(*ch, bytes);
  }
  probe->done = engine->now();
}

double MeasureCycles(const char* memory, uint32_t bytes, bool write) {
  EventQueue engine;
  Ixp1200 chip(engine, HwConfig::Default());
  MemoryChannel* ch = nullptr;
  if (std::string(memory) == "dram") {
    ch = &chip.memory().dram();
  } else if (std::string(memory) == "sram") {
    ch = &chip.memory().sram();
  } else {
    ch = &chip.memory().scratch();
  }
  Probe probe;
  chip.me(0).context(0).Install(
      MeasureOne(&chip.me(0).context(0), ch, bytes, write, &probe, &engine));
  bench::RecordEvents(engine.RunAll());
  return static_cast<double>(kIxpClock.ToCycles(probe.done - probe.start));
}

}  // namespace
}  // namespace npr

int main() {
  using namespace npr;
  using namespace npr::bench;

  Title("Table 3 — memory transfer latencies (MicroEngine cycles, 5 ns each)");
  RowHeader();
  Row("DRAM  32 B read", 52, MeasureCycles("dram", 32, false), "cy");
  Row("DRAM  32 B write", 40, MeasureCycles("dram", 32, true), "cy");
  Row("SRAM   4 B read", 22, MeasureCycles("sram", 4, false), "cy");
  Row("SRAM   4 B write", 22, MeasureCycles("sram", 4, true), "cy");
  Row("Scratch 4 B read", 16, MeasureCycles("scratch", 4, false), "cy");
  Row("Scratch 4 B write", 20, MeasureCycles("scratch", 4, true), "cy");

  Title("Peak bandwidths (datasheet cross-check, §2.2)");
  RowHeader();
  {
    EventQueue engine;
    Ixp1200 chip(engine, HwConfig::Default());
    for (int i = 0; i < 20000; ++i) {
      chip.memory().dram().Issue(64, true, [] {});
    }
    bench::RecordEvents(engine.RunAll());
    const double gbps = static_cast<double>(chip.memory().dram().bytes_moved()) * 8 /
                        (static_cast<double>(engine.now()) / kPsPerSec) / 1e9;
    Row("DRAM sustained (64-bit x 100 MHz)", 6.4, gbps, "Gbps");
  }
  {
    EventQueue engine;
    Ixp1200 chip(engine, HwConfig::Default());
    for (int i = 0; i < 50000; ++i) {
      chip.memory().sram().Issue(4, true, [] {});
    }
    bench::RecordEvents(engine.RunAll());
    const double gbps = static_cast<double>(chip.memory().sram().bytes_moved()) * 8 /
                        (static_cast<double>(engine.now()) / kPsPerSec) / 1e9;
    Row("SRAM sustained (32-bit x 100 MHz)", 3.2, gbps, "Gbps");
  }
  bench::EmitJson("table3_memory_latency");
  return 0;
}
