// Hitless in-service upgrade bench: the acceptance numbers for the upgrade
// orchestrator (src/core/upgrade.h) and the cluster rolling upgrade
// (src/health/rolling_upgrade.h), emitted as rows in BENCH_upgrade.json for
// ci/upgrade_smoke.sh.
//
// Three experiments:
//   1. hitless — a stateful MicroEngine forwarder is upgraded under live
//      traffic through a layout migration; the run must deliver every
//      conforming packet bit-identically to a never-upgraded control run,
//      with a cutover pause of a few hundred StrongARM cycles.
//   2. rollback — a byzantine image that conforms through shadow validation
//      and goes bad in soak; MTTD/MTTR of the auto-rollback, plus the
//      bit-identity of the post-rollback decision stream.
//   3. rolling — 8-node sharded cluster. A lossy/corrupting control plane
//      must still promote all 8 nodes; full UpgradeChaos (adding lost
//      cutover steps) may complete or abort, but must end version-
//      consistent, without a single spurious node-death suspicion.

#include <cinttypes>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/cluster_control.h"
#include "src/core/upgrade.h"
#include "src/fault/fault_plan.h"
#include "src/fault/router_invariants.h"
#include "src/health/cluster_health.h"
#include "src/health/rolling_upgrade.h"

namespace npr {
namespace {

VrpProgram ParityQueue(int32_t counter_offset, uint32_t state_bytes, const char* name) {
  VrpProgram p;
  p.name = name;
  p.flow_state_bytes = state_bytes;
  p.code = {
      {VrpOp::kLdSram, 0, 0, counter_offset},
      {VrpOp::kAddI, 0, 0, 1},
      {VrpOp::kStSram, 0, 0, counter_offset},
      {VrpOp::kMovI, 1, 0, 0},
      {VrpOp::kAndI, 0, 0, 1},
      {VrpOp::kBeq, 0, 1, 2},
      {VrpOp::kSetQueue, 0, 0, 1},
      {VrpOp::kSend, 0, 0, 0},
  };
  return p;
}

// Conforms until the flow-state counter passes `misbehave_after`, then
// silently drops — a byzantine image built to survive shadow validation.
VrpProgram ByzantineAfter(int32_t misbehave_after, const char* name) {
  VrpProgram p;
  p.name = name;
  p.flow_state_bytes = 4;
  p.code = {
      {VrpOp::kLdSram, 0, 0, 0},
      {VrpOp::kAddI, 0, 0, 1},
      {VrpOp::kStSram, 0, 0, 0},
      {VrpOp::kMovI, 1, 0, misbehave_after},
      {VrpOp::kBlt, 0, 1, 2},
      {VrpOp::kDrop, 0, 0, 0},
      {VrpOp::kMovI, 1, 0, 0},
      {VrpOp::kAndI, 0, 0, 1},
      {VrpOp::kBeq, 0, 1, 2},
      {VrpOp::kSetQueue, 0, 0, 1},
      {VrpOp::kSend, 0, 0, 0},
  };
  return p;
}

struct SingleRun {
  uint64_t forwarded = 0;
  std::vector<uint64_t> decisions;
  UpgradeReport report;
  UpgradePhase phase = UpgradePhase::kIdle;
  std::vector<UpgradeRollbackRecord> rollbacks;
  bool invariants_ok = false;
};

// One single-router run: install the ParityQueue v1 forwarder, drive port-0
// traffic, optionally begin an upgrade to `next` after warmup. A null
// `next` is the control run (same seed, orchestrator attached but idle).
SingleRun RunSingle(uint64_t seed, const VrpProgram* next, const StateMigrator& migrate,
                    bool byzantine) {
  constexpr double kTrafficMs = 6.0;
  Router router{RouterConfig{}};
  bench::AddDefaultRoutes(router);
  router.WarmRouteCache(32);
  VrpProgram v1 = ParityQueue(0, 4, "v1");
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kMicroEngine;
  req.program = &v1;
  const InstallOutcome out = router.Install(req);
  const uint32_t fid = out.fid;
  const uint32_t handle = router.flow_table().Get(fid)->me_program_id;
  router.Start();
  UpgradeOrchestrator upgrade(router);
  upgrade.RecordDecisions(handle);

  std::vector<std::unique_ptr<TrafficGen>> gens;
  TrafficSpec spec;
  spec.rate_pps = 200'000;
  spec.dst_spread = 16;
  gens.push_back(
      std::make_unique<TrafficGen>(router.engine(), router.port(0), spec, seed));
  gens.back()->Start(static_cast<SimTime>(kTrafficMs * kPsPerMs));

  router.RunForMs(0.5);
  if (next != nullptr) {
    VrpProgram image = *next;
    if (byzantine) {
      // Place the misbehaviour threshold past the shadow window but inside
      // soak: current counter + one shadow window's worth of packets + some.
      const uint32_t counter = router.chip().memory().sram_store().ReadU32(
          router.flow_table().Get(fid)->state_addr);
      image = ByzantineAfter(static_cast<int32_t>(counter + 60), "byz");
    }
    upgrade.Begin(fid, image, VrpImageChecksum(image), migrate);
  }
  router.RunForMs(kTrafficMs);
  bench::RecordEvents(router.engine().events_run());

  SingleRun r;
  r.forwarded = router.stats().forwarded;
  r.decisions = upgrade.decisions();
  r.report = upgrade.report();
  r.phase = upgrade.phase();
  r.rollbacks = upgrade.rollbacks();
  const InvariantReport inv = RouterInvariants::CheckAll(router);
  if (!inv.ok()) {
    std::printf("  INVARIANT VIOLATION (single run):\n%s", inv.ToString().c_str());
  }
  r.invariants_ok = inv.ok();
  return r;
}

// --- rolling upgrade over a sharded cluster ---

struct RollingRun {
  RollingUpgradeCoordinator::Status status = RollingUpgradeCoordinator::Status::kIdle;
  int promoted = 0;
  int on_new_image = 0;
  uint64_t resends = 0;
  uint64_t delivered = 0;  // external deliveries across all nodes
  uint64_t suspects = 0;
  bool invariants_ok = false;
};

// 8-node sharded cluster run under `plan`; when `roll` is set, a rolling
// upgrade of every node's forwarder starts after convergence. A non-rolling
// run with the same seeds is the delivery-ratio control.
RollingRun RunRolling(const FaultPlan& plan, uint64_t pump_seed, bool roll) {
  ClusterConfig ccfg;
  ccfg.nodes = 8;
  ccfg.internal_links = 2;
  ccfg.fabric_latency_ps = 2 * kPsPerUs;
  ccfg.threads = 4;
  ccfg.node_config.fault_plan = plan;
  ClusterRouter cluster(std::move(ccfg));
  ClusterControlPlane control(cluster);
  control.Start();
  ClusterHealthConfig hc;
  hc.probe_max_attempts = 10;  // lossy-but-alive must not exhaust into suspicion
  ClusterHealthMonitor health(cluster, control, hc);

  VrpProgram v1 = ParityQueue(0, 4, "v1");
  VrpProgram v2 = ParityQueue(0, 8, "v2");
  std::vector<uint32_t> fids;
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    InstallRequest req;
    req.key = FlowKey::All();
    req.where = Where::kMicroEngine;
    req.program = &v1;
    fids.push_back(cluster.node(k).Install(req).fid);
  }
  cluster.Start();

  RollingUpgradeConfig rc;
  rc.node.shadow_window_ps = 100 * kPsPerUs;
  rc.node.shadow_min_packets = 16;
  rc.node.soak_window_ps = 150 * kPsPerUs;
  rc.node.soak_min_packets = 16;
  rc.node.step_deadline_ps = 200 * kPsPerUs;
  rc.node.probe_period_ps = 25 * kPsPerUs;
  rc.channel.link_delay_ps = 5 * kPsPerUs;
  rc.channel.ack_timeout_ps = 60 * kPsPerUs;
  rc.channel.backoff_base_ps = 30 * kPsPerUs;
  rc.channel.max_attempts = 5;
  RollingUpgradeCoordinator rolling(cluster, &health, rc);

  struct Pump {
    ClusterRouter* cluster;
    int node;
    Rng rng;
    SimTime gap;
    SimTime stop;
    void Tick() {
      const int g = node * cluster->external_ports_per_node() +
                    static_cast<int>(rng.Uniform(
                        static_cast<uint64_t>(cluster->external_ports_per_node())));
      PacketSpec spec;
      spec.dst_ip = cluster->ExternalDstIp(g, static_cast<uint16_t>(1 + rng.Uniform(16)));
      spec.src_ip = cluster->ExternalDstIp(node * cluster->external_ports_per_node(), 200);
      cluster->node(node).port(0).InjectFromWire(BuildPacket(spec));
      if (cluster->node_engine(node).now() + gap <= stop) {
        cluster->node_engine(node).ScheduleIn(gap, [this] { Tick(); });
      }
    }
  };
  constexpr double kPumpMs = 12.0;
  std::vector<std::unique_ptr<Pump>> pumps;
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    auto pump = std::make_unique<Pump>(
        Pump{&cluster, k, Rng(FaultPlan::DeriveNodeSeed(pump_seed, k)),
             static_cast<SimTime>(kPsPerSec / 200'000),
             static_cast<SimTime>(kPumpMs * kPsPerMs)});
    cluster.node_engine(k).ScheduleIn(pump->gap, [p = pump.get()] { p->Tick(); });
    pumps.push_back(std::move(pump));
  }

  cluster.RunForMs(1.0);
  if (roll) {
    rolling.Start(fids, v2);
  }
  // Fixed horizon for every run — the delivery ratio compares rolling vs
  // control over identical offered load, so the runs must cover the same
  // simulated span regardless of when (or whether) the rollout settles.
  cluster.RunForMs(kPumpMs);
  // Quiesce before the conservation check: the offered 200 kpps slightly
  // exceeds a node's capacity with a general forwarder on every packet, so
  // an RX-side backlog outlives the pumps. Drain until the cluster stops
  // making forwarding progress — a fixed grace period can sample a packet
  // mid-handoff and read as a one-packet leak.
  for (auto& pump : pumps) {
    pump->stop = 0;
  }
  uint64_t quiesce_prev = 0;
  for (int i = 0; i < 40; ++i) {
    cluster.RunForMs(0.5);
    uint64_t progress = 0;
    for (int k = 0; k < cluster.num_nodes(); ++k) {
      progress += cluster.node(k).stats().input.packets + cluster.node(k).stats().forwarded;
    }
    if (progress == quiesce_prev) {
      break;
    }
    quiesce_prev = progress;
  }
  bench::RecordEvents(cluster.TotalEventsRun());

  RollingRun r;
  r.status = roll ? rolling.status() : RollingUpgradeCoordinator::Status::kIdle;
  r.promoted = rolling.nodes_promoted();
  r.on_new_image = rolling.NodesOnNewImage();
  r.resends = rolling.image_resends();
  r.suspects = health.suspects_raised();
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    r.delivered += cluster.node(k).stats().forwarded;
  }
  const InvariantReport inv = RouterInvariants::CheckCluster(cluster);
  if (!inv.ok()) {
    std::printf("  INVARIANT VIOLATION (rolling run):\n%s", inv.ToString().c_str());
  }
  r.invariants_ok = inv.ok();
  return r;
}

}  // namespace
}  // namespace npr

int main(int argc, char** argv) {
  using namespace npr;
  using namespace npr::bench;

  // Optional seed (ci/upgrade_smoke.sh runs a small matrix); it reseeds the
  // traffic and the fault draws, and every seed must hold the budgets.
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 0xfa017ULL;
  SetRunInfo(seed, "upgrade");
  bool all_ok = true;

  // --- experiment 1: hitless stateful upgrade ---
  Title("hitless upgrade — stateful forwarder, layout migration, live traffic");
  VrpProgram v2 = ParityQueue(4, 8, "v2");
  const StateMigrator migrate = [](std::span<const uint8_t> old_state,
                                   std::span<uint8_t> new_state) {
    if (old_state.size() < 4 || new_state.size() < 8) {
      return false;
    }
    std::copy_n(old_state.begin(), 4, new_state.begin() + 4);
    return true;
  };
  const SingleRun control = RunSingle(seed, nullptr, nullptr, false);
  const SingleRun hitless = RunSingle(seed, &v2, migrate, false);
  const uint64_t lost = control.forwarded - hitless.forwarded;
  uint64_t decision_diffs = 0;
  const size_t common = std::min(control.decisions.size(), hitless.decisions.size());
  for (size_t i = 0; i < common; ++i) {
    decision_diffs += control.decisions[i] != hitless.decisions[i] ? 1 : 0;
  }
  decision_diffs += control.decisions.size() - common + hitless.decisions.size() - common;
  RowHeader();
  Row("upgrade: conforming packets lost (hitless)", 0.0, static_cast<double>(lost), "pkts");
  Row("upgrade: decision-stream divergences (hitless)", 0.0,
      static_cast<double>(decision_diffs), "pkts");
  Row("upgrade: shadow divergence rate", 0.0,
      hitless.report.shadow_packets > 0
          ? static_cast<double>(hitless.report.shadow_divergences) /
                static_cast<double>(hitless.report.shadow_packets)
          : 1.0,
      "ratio");
  Row("upgrade: cutover pause", 200.0,
      static_cast<double>(hitless.report.cutover_pause_cycles), "cycles");
  std::printf("  phase %s, %" PRIu64 " shadow + %" PRIu64 " soak packets, %" PRIu64
              " state bytes migrated\n",
              UpgradePhaseName(hitless.phase), hitless.report.shadow_packets,
              hitless.report.soak_packets, hitless.report.migrated_bytes);
  Note("paper pause = (1 old + 2 new state words + image flip + table repoint)");
  Note("x 40 cycles, the §4.5 StrongARM access cost; the double-buffered image");
  Note("itself was staged outside the atomic window and costs it nothing.");
  all_ok = all_ok && hitless.phase == UpgradePhase::kPromoted && lost == 0 &&
           decision_diffs == 0 && control.invariants_ok && hitless.invariants_ok;

  // --- experiment 2: byzantine image, soak rollback ---
  Title("auto-rollback — byzantine image goes bad in soak");
  const SingleRun byz = RunSingle(seed, &v2, nullptr, /*byzantine=*/true);
  double mttd_us = 0;
  double mttr_us = 0;
  if (!byz.rollbacks.empty()) {
    const UpgradeRollbackRecord& rec = byz.rollbacks.front();
    mttd_us = static_cast<double>(rec.detected_at - rec.fault_at) / kPsPerUs;
    mttr_us = static_cast<double>(rec.recovered_at - rec.fault_at) / kPsPerUs;
  }
  // Post-rollback bit-identity: the decision streams must realign and stay
  // aligned once the retained image and state are live again.
  size_t last_diff = 0;
  bool any_diff = false;
  const size_t n = std::min(control.decisions.size(), byz.decisions.size());
  for (size_t i = 0; i < n; ++i) {
    if (control.decisions[i] != byz.decisions[i]) {
      last_diff = i;
      any_diff = true;
    }
  }
  const bool suffix_identical = control.decisions.size() == byz.decisions.size() &&
                                any_diff && last_diff + 100 < n;
  RowHeader();
  Row("upgrade: rollback MTTD", 250.0, mttd_us, "us");
  Row("upgrade: rollback MTTR", 300.0, mttr_us, "us");
  Row("upgrade: post-rollback stream bit-identical", 1.0, suffix_identical ? 1.0 : 0.0,
      "bool");
  std::printf("  phase %s, %zu rollback episode(s), last divergence at decision %zu/%zu\n",
              UpgradePhaseName(byz.phase), byz.rollbacks.size(), last_diff, n);
  Note("MTTD = first diverged packet to the rollback decision (gated by the");
  Note("soak evidence bar); MTTR adds the revert itself. The soak shadow kept");
  Note("the retained state current, so recovery realigns bit-for-bit.");
  all_ok = all_ok && byz.phase == UpgradePhase::kRolledBack && suffix_identical &&
           byz.invariants_ok;

  // --- experiment 3: cluster rolling upgrade ---
  Title("rolling upgrade — 8-node sharded cluster");
  FaultPlan lossy = FaultPlan::UpgradeChaos(seed);
  lossy.upgrade_crash_p = 0;  // lossy+corrupting channel, but steps survive
  const RollingRun base = RunRolling(FaultPlan{}, seed, /*roll=*/false);
  const RollingRun clean = RunRolling(lossy, seed, /*roll=*/true);
  const RollingRun chaos = RunRolling(FaultPlan::UpgradeChaos(seed), seed, /*roll=*/true);
  const bool chaos_consistent =
      (chaos.status == RollingUpgradeCoordinator::Status::kDone &&
       chaos.on_new_image == 8) ||
      (chaos.status == RollingUpgradeCoordinator::Status::kAborted &&
       chaos.on_new_image == 0);
  RowHeader();
  Row("upgrade: rolling nodes promoted (lossy channel)", 8.0,
      static_cast<double>(clean.promoted), "nodes");
  Row("upgrade: rolling delivery ratio vs no-upgrade run", 1.0,
      base.delivered > 0
          ? static_cast<double>(clean.delivered) / static_cast<double>(base.delivered)
          : 0.0,
      "ratio");
  Row("upgrade: rolling version-consistent under full chaos", 1.0,
      chaos_consistent ? 1.0 : 0.0, "bool");
  Row("upgrade: suspects raised during rolling upgrades", 0.0,
      static_cast<double>(clean.suspects + chaos.suspects), "events");
  std::printf("  lossy: %s, %d/8 promoted, %" PRIu64 " image resends, %" PRIu64
              " delivered (control %" PRIu64 ")\n",
              RollingUpgradeCoordinator::StatusName(clean.status), clean.promoted, clean.resends,
              clean.delivered, base.delivered);
  std::printf("  chaos: %s, %d on new image, %" PRIu64 " image resends\n",
              RollingUpgradeCoordinator::StatusName(chaos.status), chaos.on_new_image, chaos.resends);
  Note("a 15% lossy, 20% corrupting control channel must still promote 8/8 —");
  Note("checksums reject corrupted copies and fresh sends redraw the link.");
  Note("full chaos adds lost cutover steps (25%): the rollout may complete or");
  Note("abort, but the cluster must end version-consistent and no upgrade may");
  Note("ever be mistaken for a node death.");
  all_ok = all_ok && clean.promoted == 8 && chaos_consistent &&
           clean.suspects + chaos.suspects == 0 && base.invariants_ok &&
           clean.invariants_ok && chaos.invariants_ok;

  EmitJson("upgrade");
  return all_ok ? 0 : 1;
}
