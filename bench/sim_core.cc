// Event-core microbench: raw events/sec through EventQueue for the event
// shapes the simulator actually produces. No router model — this isolates
// the scheduling engine so regressions in the timing wheel, the node pool,
// or EventFn dispatch show up without model noise. ci/perf_smoke.sh checks
// the headline rates against a floor.

#include <chrono>
#include <coroutine>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/event_queue.h"
#include "src/sim/shard_group.h"
#include "src/sim/time.h"

namespace npr {
namespace {

double Secs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Hot path of the simulator: N self-rescheduling "clocks" at fixed small
// deltas (MicroEngine 5000 ps, Pentium 1364 ps, bus 15152 ps), every event
// landing in the level-0 window.
double SelfRescheduling(uint64_t target_events) {
  EventQueue q;
  struct Clock {
    EventQueue* q;
    SimTime period;
    uint64_t remaining;
    static void Tick(void* self) {
      Clock* c = static_cast<Clock*>(self);
      if (c->remaining-- > 0) {
        c->q->ScheduleRaw(c->q->now() + c->period, &Clock::Tick, c);
      }
    }
  };
  Clock clocks[] = {
      {&q, 5000, target_events / 3},
      {&q, 1364, target_events / 3},
      {&q, 15152, target_events / 3},
  };
  const auto t0 = std::chrono::steady_clock::now();
  for (Clock& c : clocks) {
    q.ScheduleRaw(c.period, &Clock::Tick, &c);
  }
  q.RunAll(target_events + 16);
  const double rate = static_cast<double>(q.events_run()) / Secs(t0);
  bench::RecordEvents(q.events_run());
  return rate;
}

// Same-instant fan-out: bursts of events at one timestamp (DMA completions
// fanning out to contexts), exercising bucket sort + FIFO-order dispatch.
double SameInstantFanout(uint64_t target_events) {
  EventQueue q;
  static constexpr int kBurst = 32;
  struct Fan {
    EventQueue* q;
    uint64_t remaining;
    static void Burst(void* self) {
      Fan* f = static_cast<Fan*>(self);
      if (f->remaining < kBurst) {
        return;
      }
      f->remaining -= kBurst;
      const SimTime t = f->q->now() + 5000;
      for (int i = 0; i < kBurst - 1; ++i) {
        f->q->ScheduleRaw(t, [](void*) {}, nullptr);
      }
      f->q->ScheduleRaw(t, &Fan::Burst, f);
    }
  };
  Fan fan{&q, target_events};
  const auto t0 = std::chrono::steady_clock::now();
  q.ScheduleRaw(0, &Fan::Burst, &fan);
  q.RunAll(target_events + 16);
  const double rate = static_cast<double>(q.events_run()) / Secs(t0);
  bench::RecordEvents(q.events_run());
  return rate;
}

// Coroutine resume path: what Compute/Read/Write awaitables do.
struct CoroTask {
  struct promise_type {
    CoroTask get_return_object() {
      return {std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() {}
  };
  std::coroutine_handle<promise_type> handle;
};

struct DelayAwaiter {
  EventQueue* q;
  SimTime dt;
  bool await_ready() const { return false; }
  void await_suspend(std::coroutine_handle<> h) { q->ScheduleResumeIn(dt, h); }
  void await_resume() {}
};

CoroTask CoroLoop(EventQueue* q, uint64_t iterations) {
  for (uint64_t i = 0; i < iterations; ++i) {
    co_await DelayAwaiter{q, 5000};
  }
}

double CoroutineResume(uint64_t target_events) {
  EventQueue q;
  CoroTask task = CoroLoop(&q, target_events);
  const auto t0 = std::chrono::steady_clock::now();
  task.handle.resume();  // runs to the first co_await
  q.RunAll(target_events + 16);
  const double rate = static_cast<double>(q.events_run()) / Secs(t0);
  bench::RecordEvents(q.events_run());
  task.handle.destroy();
  return rate;
}

// Far-future churn: timer-style events far beyond the wheels' span mixed
// with hot-path ticks, forcing heap traffic plus cascades on every window
// and rotation boundary.
double FarFutureChurn(uint64_t target_events) {
  EventQueue q;
  struct Timer {
    EventQueue* q;
    uint64_t remaining;
    SimTime stride;
    static void Fire(void* self) {
      Timer* t = static_cast<Timer*>(self);
      if (t->remaining-- > 0) {
        t->q->ScheduleRaw(t->q->now() + t->stride, &Timer::Fire, t);
      }
    }
  };
  Timer timers[] = {
      {&q, target_events / 4, 5000},                   // level 0
      {&q, target_events / 4, 6 * kPsPerUs},           // level 1
      {&q, target_events / 4, 6 * kPsPerMs},           // level 2
      {&q, target_events / 4, 5 * kPsPerSec},          // far heap
  };
  const auto t0 = std::chrono::steady_clock::now();
  for (Timer& t : timers) {
    q.ScheduleRaw(t.stride, &Timer::Fire, &t);
  }
  q.RunAll(target_events + 16);
  const double rate = static_cast<double>(q.events_run()) / Secs(t0);
  bench::RecordEvents(q.events_run());
  return rate;
}

// Sharded engines: one hot-path clock per shard, windowed by a ShardGroup
// with an idle hub and a 4 us lookahead window (the cluster's fabric
// latency). No model, no cross-shard traffic — what's measured is raw
// per-shard event dispatch plus the window barrier and worker-pool cost.
// With threads == shards and enough cores the aggregate rate should scale
// near-linearly; the (x8, 1 thread) row isolates pure windowing overhead.
double ShardedEngines(int shards, int threads, uint64_t target_events) {
  EventQueue hub;
  std::vector<std::unique_ptr<EventQueue>> engines;
  std::vector<EventQueue*> ptrs;
  for (int i = 0; i < shards; ++i) {
    engines.push_back(std::make_unique<EventQueue>());
    ptrs.push_back(engines.back().get());
  }
  struct Clock {
    EventQueue* q;
    SimTime period;
    uint64_t remaining;
    static void Tick(void* self) {
      Clock* c = static_cast<Clock*>(self);
      if (c->remaining-- > 0) {
        c->q->ScheduleRaw(c->q->now() + c->period, &Clock::Tick, c);
      }
    }
  };
  const uint64_t per_shard = target_events / static_cast<uint64_t>(shards);
  std::vector<Clock> clocks;
  clocks.reserve(engines.size());
  for (auto& q : engines) {
    clocks.push_back({q.get(), 5000, per_shard});
  }
  ShardGroup group(&hub, ptrs, 4 * kPsPerUs, threads);
  const auto t0 = std::chrono::steady_clock::now();
  for (Clock& c : clocks) {
    c.q->ScheduleRaw(c.period, &Clock::Tick, &c);
  }
  group.RunUntil(static_cast<SimTime>(per_shard + 2) * 5000);
  const double rate = static_cast<double>(group.events_run()) / Secs(t0);
  bench::RecordEvents(group.events_run());
  return rate;
}

}  // namespace
}  // namespace npr

int main() {
  using namespace npr;
  using namespace npr::bench;
  constexpr uint64_t kEvents = 6'000'000;

  Title("Event core — millions of events/sec by event shape");
  RowHeader();
  Row("self-rescheduling fixed deltas (hot path)", 0, SelfRescheduling(kEvents) / 1e6, "Mev");
  Row("same-instant fan-out bursts of 32", 0, SameInstantFanout(kEvents) / 1e6, "Mev");
  Row("coroutine suspend/resume", 0, CoroutineResume(kEvents / 2) / 1e6, "Mev");
  Row("mixed wheel levels + far-future heap", 0, FarFutureChurn(kEvents) / 1e6, "Mev");
  Row("sharded engines x1 aggregate", 0, ShardedEngines(1, 1, kEvents) / 1e6, "Mev");
  Row("sharded engines x2 aggregate", 0, ShardedEngines(2, 2, kEvents) / 1e6, "Mev");
  Row("sharded engines x4 aggregate", 0, ShardedEngines(4, 4, kEvents) / 1e6, "Mev");
  Row("sharded engines x8 aggregate", 0, ShardedEngines(8, 8, kEvents) / 1e6, "Mev");
  Row("sharded engines x8, 1 thread", 0, ShardedEngines(8, 1, kEvents) / 1e6, "Mev");
  Note("no paper counterpart (column shows 0): these are implementation");
  Note("throughput floors enforced by ci/perf_smoke.sh.");
  Note("sharded rows: hot-path clocks behind a 4 us lookahead window; xN runs");
  Note("N shards on N threads, the last row isolates barrier overhead at t=1.");
  bench::EmitJson("sim_core");
  return 0;
}
