// §4.4 in-text: forwarders that cannot live within the VRP budget and must
// run on the StrongARM or Pentium — TCP proxies (>= 800 cycles/packet),
// full IP (660), and the controlled-prefix-expansion route lookup (avg 236
// cycles/packet).

#include "bench/bench_util.h"
#include "src/forwarders/native.h"
#include "src/net/tcp.h"
#include "src/sim/random.h"

namespace npr {
namespace {

// Average CPE lookup cost under our StrongARM charging model (56 compute +
// 22-cycle SRAM stall per trie level), over a realistic mixed-length table.
double MeasureLpmCycles() {
  RouteTable table;
  Rng rng(0x1234);
  std::vector<uint32_t> targets;
  for (int i = 0; i < 1000; ++i) {
    const uint8_t len = static_cast<uint8_t>(rng.Range(17, 28));
    const Prefix p = Prefix::Make(static_cast<uint32_t>(rng.Next()), len);
    RouteEntry e{static_cast<uint8_t>(rng.Uniform(8)), PortMac(0)};
    table.AddRoute(p, e);
    targets.push_back(p.addr | (static_cast<uint32_t>(rng.Next()) & ~p.Mask()));
  }
  double total = 0;
  for (uint32_t ip : targets) {
    auto r = table.Lookup(ip);
    total += r.memory_accesses * (56.0 + 22.0);
  }
  return total / static_cast<double>(targets.size());
}

// Measured cost of the full-IP forwarder over a mix with 20% option-bearing
// packets (declared cycles + data-dependent extra).
double MeasureFullIpCycles() {
  RouteTable routes;
  for (int p = 0; p < 8; ++p) {
    routes.AddRoute("10." + std::to_string(p) + ".0.0/16", static_cast<uint8_t>(p));
  }
  BackingStore sram("sram", 1024);
  FullIpForwarder fw;
  Rng rng(0x77);
  double total = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    PacketSpec spec;
    spec.dst_ip = DstIpForPort(static_cast<uint8_t>(rng.Uniform(8)), 1);
    if (rng.Chance(0.2)) {
      spec.ip_options = {0x07, 0x07, 0x04, 0, 0, 0, 0, 0};
    }
    Packet p = BuildPacket(spec);
    NativeContext ctx;
    ctx.packet = &p;
    ctx.routes = &routes;
    ctx.sram = &sram;
    ctx.state_bytes = 16;
    fw.Process(ctx);
    total += fw.cycles_per_packet() + ctx.extra_cycles;
  }
  return total / n;
}

double MeasureProxyCycles() {
  BackingStore sram("sram", 1024);
  TcpProxyForwarder fw;
  RouteTable routes;
  double total = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    PacketSpec spec;
    spec.protocol = kIpProtoTcp;
    spec.tcp_flags = i == 0 ? kTcpFlagSyn : kTcpFlagAck;
    spec.frame_bytes = 256;
    Packet p = BuildPacket(spec);
    NativeContext ctx;
    ctx.packet = &p;
    ctx.routes = &routes;
    ctx.sram = &sram;
    ctx.state_bytes = 32;
    fw.Process(ctx);
    total += fw.cycles_per_packet() + ctx.extra_cycles;
  }
  return total / n;
}

}  // namespace
}  // namespace npr

int main() {
  using namespace npr;
  using namespace npr::bench;

  Title("§4.4 — forwarders beyond the VRP budget (cycles per packet)");
  RowHeader();
  Row("TCP proxy (>= 800 per the paper)", 800, MeasureProxyCycles(), "cy");
  Row("full IP (with options mix)", 660, MeasureFullIpCycles(), "cy");
  Row("CPE prefix lookup (average)", 236, MeasureLpmCycles(), "cy");
  Note("all exceed the 240-cycle VRP budget, which is why they run on the");
  Note("StrongARM or Pentium (§4.4); the VRP-admissible examples are in the");
  Note("table5_forwarders bench.");
  bench::EmitJson("expensive_forwarders");
  return 0;
}
