// §3.6 in-text results: the StrongARM's maximum forwarding rate with a
// null forwarder — 526 Kpps polling, "significantly slower" with
// interrupts — measured by programming the input contexts to pass every
// packet to the StrongARM.

#include "bench/bench_util.h"
#include "src/forwarders/native.h"

namespace npr {
namespace {

double SaRateKpps(bool interrupts) {
  RouterConfig cfg = bench::InfiniteFifoConfig();
  cfg.enable_strongarm = true;
  cfg.synthetic_exceptional_fraction = 1.0;  // all packets to the StrongARM
  cfg.sa_use_interrupts = interrupts;
  cfg.output_contexts_override = 0;
  cfg.magic_drain = true;  // drain both the SA's output and the exception backlog
  Router router(std::move(cfg));
  bench::AddDefaultRoutes(router);
  // Null forwarder as an SA general (the paper's measurement forwarder).
  const int idx = router.sa_forwarders().Register(std::make_unique<NullForwarder>(150));
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kStrongArm;
  req.native_index = idx;
  req.expected_pps = 1000;  // nominal; the measurement saturates regardless
  auto outcome = router.Install(req);
  if (!outcome.ok) {
    std::fprintf(stderr, "install failed: %s\n", outcome.error.c_str());
    return 0;
  }
  router.Start();

  router.RunForMs(3.0);
  router.StartMeasurement();
  const uint64_t before = router.stats().sa_local_processed;
  const SimTime t0 = router.engine().now();
  router.RunForMs(30.0);
  const double seconds =
      static_cast<double>(router.engine().now() - t0) / static_cast<double>(kPsPerSec);
  bench::RecordEvents(router.engine().events_run());
  return static_cast<double>(router.stats().sa_local_processed - before) / seconds / 1e3;
}

}  // namespace
}  // namespace npr

int main() {
  using namespace npr;
  using namespace npr::bench;

  Title("§3.6 — StrongARM null-forwarder rate (all packets diverted)");
  RowHeader();
  const double polling = SaRateKpps(false);
  const double interrupts = SaRateKpps(true);
  Row("polling", 526.0, polling, "Kpps");
  Row("interrupts ('significantly slower')", 0, interrupts, "Kpps");
  Note("no additional cycles remain for packet work at this rate (§3.6);");
  Note("interrupt dispatch costs ~600 cycles per packet in our model.");
  std::printf("  interrupt/polling ratio: %.2f\n", interrupts / polling);
  bench::EmitJson("strongarm_path");
  return 0;
}
