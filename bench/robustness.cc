// §4.7 robustness experiments.
//
// Experiment 1: with a forwarder suite using the full VRP budget, an
// increasing share of the 1.128 Mpps line-rate load is routed through the
// Pentium. The paper found up to 310 Kpps flows through the Pentium with no
// drops anywhere, each packet receiving 1510 cycles of service.
//
// Experiment 2: an increasing percentage of packets is treated as
// exceptional (a simulated control-packet flood). Regular forwarding is
// unaffected until the StrongARM itself saturates.

// Experiment 3 (self-healing extension): the Pentium hangs while carrying a
// share of the load. With the health monitor attached the bridge sheds
// Pentium-bound packets while the host is degraded, so path A holds its
// rate during the hang and returns to baseline after recovery.

// Experiment 4 (overload-governor extension): gigabit ports under each
// adversarial workload, with a conforming source on an uncontended port and
// control frames arriving through a flooded port. Holds the graceful-
// degradation contract as paper-vs-measured rows: conforming goodput within
// 10% of fault-free, control-plane delivery at 100%, every governor drop
// attributed, and an 8-node flooded cluster with zero spurious
// reconvergences. ci/chaos_smoke.sh enforces the budgets on these rows.

#include <atomic>

#include "bench/bench_util.h"
#include "src/cluster/cluster_control.h"
#include "src/core/overload.h"
#include "src/core/upgrade.h"
#include "src/fault/fault_injector.h"
#include "src/fault/router_invariants.h"
#include "src/forwarders/native.h"
#include "src/forwarders/vrp_programs.h"
#include "src/health/cluster_health.h"
#include "src/health/health_monitor.h"

namespace npr {
namespace {

struct PentiumPoint {
  double offered_frac;
  double pentium_kpps;
  double fast_path_mpps;
  uint64_t regular_drops;
  uint64_t pentium_path_drops;
};

PentiumPoint RunPentiumShare(double fraction) {
  RouterConfig cfg;  // real ports at line rate
  cfg.synthetic_pentium_fraction = fraction;
  Router router(std::move(cfg));
  bench::AddDefaultRoutes(router);
  router.WarmRouteCache(64);

  // The VRP suite (§4.7: "a synthetic suite of forwarders based on the
  // examples given in Section 4.4" using the full budget).
  for (auto builder : {BuildSynMonitor, BuildAckMonitor}) {
    VrpProgram program = builder();
    InstallRequest req;
    req.key = FlowKey::All();
    req.where = Where::kMicroEngine;
    req.program = &program;
    (void)router.Install(req);
  }
  // The Pentium service: 1510 cycles per packet.
  const int idx = router.pe_forwarders().Register(
      std::make_unique<FixedCostForwarder>("service-1510", 1510));
  InstallRequest pe;
  pe.key = FlowKey::All();
  pe.where = Where::kPentium;
  pe.native_index = idx;
  // Reserve a rate admission accepts; the experiment then offers more than
  // the reservation (the paper had no admission control and simply pushed
  // load until packets dropped).
  pe.expected_pps = std::min(fraction * 1.128e6, 250e3);
  pe.expected_cpp = 1510;
  auto pe_outcome = router.Install(pe);
  if (!pe_outcome.ok) {
    std::fprintf(stderr, "pentium service install failed: %s\n", pe_outcome.error.c_str());
  }
  router.Start();

  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int p = 0; p < 8; ++p) {
    TrafficSpec spec;
    spec.rate_pps = 141'000;
    gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                static_cast<uint64_t>(p + 31)));
    gens.back()->Start(40 * kPsPerMs);
  }
  router.RunForMs(5.0);
  router.StartMeasurement();
  const uint64_t pe_before = router.stats().pentium_processed;
  const SimTime t0 = router.engine().now();
  router.RunForMs(30.0);
  const double seconds =
      static_cast<double>(router.engine().now() - t0) / static_cast<double>(kPsPerSec);

  PentiumPoint point;
  point.offered_frac = fraction;
  point.pentium_kpps =
      static_cast<double>(router.stats().pentium_processed - pe_before) / seconds / 1e3;
  point.fast_path_mpps = router.ForwardingRateMpps();
  point.regular_drops = router.queues().TotalDrops();
  point.pentium_path_drops = router.stats().dropped_queue_full - point.regular_drops;
  bench::RecordEvents(router.engine().events_run());
  return point;
}

struct FloodPoint {
  double exceptional_frac;
  double regular_mpps;
  double sa_kpps;
  uint64_t regular_drops;
};

FloodPoint RunExceptionalFlood(double fraction) {
  // Base infrastructure at maximum rate, no VRP (§4.7 experiment 2),
  // with `fraction` of packets treated as exceptional.
  RouterConfig cfg = bench::InfiniteFifoConfig();
  cfg.enable_strongarm = true;
  cfg.synthetic_exceptional_fraction = fraction;
  Router router(std::move(cfg));
  bench::AddDefaultRoutes(router);
  router.Start();
  router.RunForMs(2.0);
  router.StartMeasurement();
  const uint64_t sa_before = router.stats().sa_local_processed;
  const SimTime t0 = router.engine().now();
  router.RunForMs(10.0);
  const double seconds =
      static_cast<double>(router.engine().now() - t0) / static_cast<double>(kPsPerSec);

  FloodPoint point;
  point.exceptional_frac = fraction;
  point.regular_mpps = router.ForwardingRateMpps();
  point.sa_kpps =
      static_cast<double>(router.stats().sa_local_processed - sa_before) / seconds / 1e3;
  point.regular_drops = router.queues().TotalDrops();
  bench::RecordEvents(router.engine().events_run());
  return point;
}

struct HealPoint {
  double during_mpps = 0;  // path A while the Pentium is hanging (shedding)
  double after_mpps = 0;   // path A after faults stop and recovery completes
  uint64_t shed = 0;
  uint64_t watchdog = 0;
};

HealPoint RunSelfHealing(bool faulty) {
  RouterConfig cfg;  // real ports at line rate, a Pentium share of the load
  cfg.synthetic_pentium_fraction = 0.2;
  if (faulty) {
    FaultPlan plan;
    plan.pentium_hang_mean_ps = 4 * kPsPerMs;
    plan.pentium_hang_ps = 1500 * kPsPerUs;
    cfg.fault_plan = plan;
  }
  Router router(std::move(cfg));
  bench::AddDefaultRoutes(router);
  router.WarmRouteCache(64);
  const int idx = router.pe_forwarders().Register(
      std::make_unique<FixedCostForwarder>("service-1510", 1510));
  InstallRequest pe;
  pe.key = FlowKey::All();
  pe.where = Where::kPentium;
  pe.native_index = idx;
  pe.expected_pps = 200e3;
  pe.expected_cpp = 1510;
  (void)router.Install(pe);
  router.Start();
  HealthMonitor health(router);

  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int p = 0; p < 8; ++p) {
    TrafficSpec spec;
    spec.rate_pps = 141'000;
    gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                static_cast<uint64_t>(p + 31)));
    gens.back()->Start(35 * kPsPerMs);
  }
  HealPoint point;
  router.RunForMs(5.0);
  router.StartMeasurement();
  router.RunForMs(12.0);  // hangs arrive here; the bridge sheds
  point.during_mpps = router.ForwardingRateMpps();
  if (router.fault_injector() != nullptr) {
    router.fault_injector()->set_armed(false);
  }
  router.RunForMs(3.0);  // recovery grace
  router.StartMeasurement();
  router.RunForMs(10.0);
  point.after_mpps = router.ForwardingRateMpps();
  point.shed = router.stats().pkts_shed_degraded;
  point.watchdog = router.stats().watchdog_fired;
  bench::RecordEvents(router.engine().events_run());
  return point;
}

const char* AdversarialName(TrafficSpec::Adversarial mode) {
  switch (mode) {
    case TrafficSpec::Adversarial::kMinSizeFlood:
      return "min-size flood";
    case TrafficSpec::Adversarial::kElephantFlows:
      return "elephant flows";
    case TrafficSpec::Adversarial::kOnOffBurst:
      return "on/off burst";
    case TrafficSpec::Adversarial::kFlowChurn:
      return "flow churn";
    default:
      return "none";
  }
}

Packet ControlFrame(uint8_t arrival_port, uint32_t id) {
  PacketSpec spec;
  spec.protocol = kIpProtoOspfLite;
  spec.eth_src = PortMac(arrival_port);
  spec.eth_dst = PortMac(0xfe);
  spec.dst_ip = 0x0aff0001;
  spec.src_ip = SrcIpForPort(arrival_port, 99);
  Packet p = BuildPacket(spec);
  p.set_id(id);
  p.set_arrival_port(arrival_port);
  return p;
}

struct OverloadPoint {
  uint64_t conforming_delivered = 0;
  uint64_t escalations = 0;
  uint64_t red = 0;
  uint64_t policed = 0;
  uint64_t quenched = 0;
  uint64_t shed_host = 0;
  uint64_t control_sent = 0;
  uint64_t control_admitted = 0;
  uint64_t control_bridged = 0;
  bool attribution_ok = false;
};

// One adversarial-load run: conforming 100 Kpps on port 0 -> port 5, the
// attack (when on) floods ports 1-3 at dst port 4 under `mode`. Control
// frames arrive through flooded port 1 on a cadence spanning every ladder
// stage. The extra 2.5 ms past the generators drains the wire backlog and
// the victim's output queue so the conservation check runs at quiescence.
OverloadPoint RunAdversarialLoad(TrafficSpec::Adversarial mode, bool attack,
                                 bool with_control) {
  RouterConfig cfg;
  cfg.port_rates_bps = std::vector<double>(8, 1e9);  // gig ports: path A can overload
  Router router(std::move(cfg));
  bench::AddDefaultRoutes(router);
  router.WarmRouteCache(32);
  OverloadPoint point;
  // Count only the conforming generator's frames (id prefix = source port 0):
  // the elephant/churn modes spray destinations, and their strays landing on
  // port 5 must not inflate the goodput ratio.
  router.port(5).SetSink([&point](Packet&& p) {
    point.conforming_delivered += (p.id() >> 24) == 0 ? 1 : 0;
  });
  router.Start();
  OverloadGovernor gov(router);

  std::vector<std::unique_ptr<TrafficGen>> gens;
  TrafficSpec conforming;
  conforming.rate_pps = 100'000;
  conforming.pattern = TrafficSpec::DstPattern::kSinglePort;
  conforming.single_dst_port = 5;
  gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(0), conforming, 99));
  gens.back()->Start(5 * kPsPerMs);
  if (attack) {
    for (int p : {1, 2, 3}) {
      TrafficSpec spec;
      spec.rate_pps = 1.6e6;  // above gigabit line rate; the wire paces it down
      spec.adversarial = mode;
      spec.flood_factor = 1.0;
      spec.single_dst_port = 4;
      // Rotating sources defeat the stage-2 policer so the ladder can walk
      // deeper than policing under the flood modes.
      spec.flood_sources = 64;
      gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                  42 + static_cast<uint64_t>(p)));
      gens.back()->Start(5 * kPsPerMs);
    }
  }
  if (with_control) {
    const int kControl = 40;
    point.control_sent = kControl;
    for (int i = 0; i < kControl; ++i) {
      router.engine().Schedule(static_cast<SimTime>(i) * 100 * kPsPerUs, [&router, i] {
        router.port(1).InjectFromWire(ControlFrame(1, 0x00c00001u + static_cast<uint32_t>(i)));
      });
    }
  }
  router.RunForMs(7.5);

  point.escalations = gov.escalations();
  point.red = router.stats().gov_red_dropped;
  point.policed = router.stats().gov_policed;
  point.quenched = router.stats().gov_quenched;
  point.shed_host = router.stats().gov_shed_pe + router.stats().gov_shed_sa;
  point.control_admitted = gov.control_admitted();
  // The UDP workload rides path A, so the Pentium-bound stream is exactly
  // the injected control traffic.
  point.control_bridged = router.bridge().bridged_to_pentium();
  point.attribution_ok = RouterInvariants::CheckAll(router).ok();
  bench::RecordEvents(router.engine().events_run());
  return point;
}

struct ClusterFloodPoint {
  uint64_t escalations = 0;
  uint64_t reconvergences = 0;
  uint64_t suspects = 0;
  uint64_t delivered = 0;
  int nodes_up = 0;
};

// The 8-node sharded cluster with both external ports of every node flooded
// at line rate (one stream crosses the fabric, one hairpins), so each node
// sees ~3 line-rate ingress streams against ~2.3 streams of path-A
// capacity. Overload must never masquerade as node death.
ClusterFloodPoint RunClusterFlood() {
  ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.internal_links = 2;
  cfg.fabric_latency_ps = 2 * kPsPerUs;
  cfg.threads = 2;
  cfg.node_config.port_rates_bps = std::vector<double>(4, 1e9);
  ClusterRouter cluster(std::move(cfg));

  ClusterControlPlane control(cluster);
  control.Start();
  ClusterHealthMonitor cluster_health(cluster, control);

  ClusterFloodPoint point;
  // Sinks fire on their node's shard thread; the cross-node tally must be
  // atomic under the sharded engine.
  std::atomic<uint64_t> delivered{0};
  std::vector<std::unique_ptr<OverloadGovernor>> governors;
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    governors.push_back(std::make_unique<OverloadGovernor>(cluster.node(k)));
    for (int p = 0; p < cluster.external_ports_per_node(); ++p) {
      cluster.node(k).port(p).SetSink([&delivered](Packet&&) { ++delivered; });
    }
  }
  cluster.Start();

  const int ext = cluster.external_ports_per_node();
  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    const int next = (k + 1) % cluster.num_nodes();
    const uint8_t targets[] = {static_cast<uint8_t>(next * ext),
                               static_cast<uint8_t>(k * ext + 1)};
    for (int p = 0; p < 2; ++p) {
      TrafficSpec spec;
      spec.rate_pps = 1.6e6;
      spec.adversarial = TrafficSpec::Adversarial::kMinSizeFlood;
      spec.flood_factor = 1.0;
      spec.single_dst_port = targets[p];
      gens.push_back(std::make_unique<TrafficGen>(
          cluster.node_engine(k), cluster.node(k).port(p), spec,
          FaultPlan::DeriveNodeSeed(0x10ad5ULL, k * 2 + p)));
      gens.back()->Start(4 * kPsPerMs);
    }
  }
  cluster.RunForMs(8.0);

  point.delivered = delivered.load();
  for (const auto& gov : governors) {
    point.escalations += gov->escalations();
  }
  point.reconvergences = control.records().size();
  point.suspects = cluster_health.suspects_raised();
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    point.nodes_up += cluster.node_up(k) ? 1 : 0;
  }
  for (int k = 0; k < cluster.num_nodes(); ++k) {
    bench::RecordEvents(cluster.node_engine(k).events_run());
  }
  return point;
}

// --- experiment 5: hitless in-service upgrade ---

// A stateful MicroEngine forwarder whose queue choice depends on a counter
// in flow state; two copies stay in lockstep iff their state agrees, which
// is what the shadow/soak comparisons and the bit-identity rows exercise.
// (bench/upgrade is the full acceptance bench; these rows are the
// robustness-suite summary ci/upgrade_smoke.sh cross-checks.)
VrpProgram UpgradeParityQueue(int32_t counter_offset, uint32_t state_bytes,
                              const char* name) {
  VrpProgram p;
  p.name = name;
  p.flow_state_bytes = state_bytes;
  p.code = {
      {VrpOp::kLdSram, 0, 0, counter_offset}, {VrpOp::kAddI, 0, 0, 1},
      {VrpOp::kStSram, 0, 0, counter_offset}, {VrpOp::kMovI, 1, 0, 0},
      {VrpOp::kAndI, 0, 0, 1},                {VrpOp::kBeq, 0, 1, 2},
      {VrpOp::kSetQueue, 0, 0, 1},            {VrpOp::kSend, 0, 0, 0},
  };
  return p;
}

struct UpgradePoint {
  uint64_t forwarded = 0;
  std::vector<uint64_t> decisions;
  UpgradePhase phase = UpgradePhase::kIdle;
  size_t rollbacks = 0;
  bool invariants_ok = false;
};

// kind: 0 = control (no upgrade), 1 = hitless layout migration,
// 2 = byzantine image that goes bad in soak.
UpgradePoint RunUpgrade(int kind) {
  Router router{RouterConfig{}};
  bench::AddDefaultRoutes(router);
  router.WarmRouteCache(32);
  VrpProgram v1 = UpgradeParityQueue(0, 4, "v1");
  InstallRequest req;
  req.key = FlowKey::All();
  req.where = Where::kMicroEngine;
  req.program = &v1;
  const uint32_t fid = router.Install(req).fid;
  const uint32_t handle = router.flow_table().Get(fid)->me_program_id;
  router.Start();
  UpgradeOrchestrator upgrade(router);
  upgrade.RecordDecisions(handle);

  TrafficSpec spec;
  spec.rate_pps = 200'000;
  spec.dst_spread = 16;
  TrafficGen gen(router.engine(), router.port(0), spec, 0x46a11ULL);
  gen.Start(static_cast<SimTime>(6.0 * kPsPerMs));
  router.RunForMs(0.5);

  if (kind == 1) {
    // v2 keeps the counter in a wider record at a new offset; the layout
    // migrator carries the live value across, so parity never skips.
    VrpProgram v2 = UpgradeParityQueue(4, 8, "v2");
    upgrade.Begin(fid, v2, VrpImageChecksum(v2),
                  [](std::span<const uint8_t> old_state, std::span<uint8_t> new_state) {
                    if (old_state.size() < 4 || new_state.size() < 8) {
                      return false;
                    }
                    std::copy_n(old_state.begin(), 4, new_state.begin() + 4);
                    return true;
                  });
  } else if (kind == 2) {
    // Conforms until the counter passes the live value + 60 — past shadow
    // validation, inside the soak window — then silently drops.
    const int32_t k = static_cast<int32_t>(router.chip().memory().sram_store().ReadU32(
                          router.flow_table().Get(fid)->state_addr)) +
                      60;
    VrpProgram bad;
    bad.name = "byz";
    bad.flow_state_bytes = 4;
    bad.code = {
        {VrpOp::kLdSram, 0, 0, 0}, {VrpOp::kAddI, 0, 0, 1},
        {VrpOp::kStSram, 0, 0, 0}, {VrpOp::kMovI, 1, 0, k},
        {VrpOp::kBlt, 0, 1, 2},    {VrpOp::kDrop, 0, 0, 0},
        {VrpOp::kMovI, 1, 0, 0},   {VrpOp::kAndI, 0, 0, 1},
        {VrpOp::kBeq, 0, 1, 2},    {VrpOp::kSetQueue, 0, 0, 1},
        {VrpOp::kSend, 0, 0, 0},
    };
    upgrade.Begin(fid, bad, VrpImageChecksum(bad));
  }
  router.RunForMs(6.0);
  bench::RecordEvents(router.engine().events_run());

  UpgradePoint p;
  p.forwarded = router.stats().forwarded;
  p.decisions = upgrade.decisions();
  p.phase = upgrade.phase();
  p.rollbacks = upgrade.rollbacks().size();
  p.invariants_ok = RouterInvariants::CheckAll(router).ok();
  return p;
}

}  // namespace
}  // namespace npr

int main() {
  using namespace npr;
  using namespace npr::bench;

  Title("§4.7 experiment 1 — load routed through the Pentium (line rate 1.128 Mpps)");
  std::printf("%10s %14s %14s %14s %14s\n", "fraction", "pentium Kpps", "fast Mpps",
              "reg. drops", "pe-path drops");
  double max_lossless_kpps = 0;
  for (double f : {0.05, 0.10, 0.20, 0.275, 0.35, 0.45}) {
    auto p = RunPentiumShare(f);
    std::printf("%10.3f %14.1f %14.3f %14llu %14llu\n", p.offered_frac, p.pentium_kpps,
                p.fast_path_mpps, static_cast<unsigned long long>(p.regular_drops),
                static_cast<unsigned long long>(p.pentium_path_drops));
    if (p.regular_drops == 0 && p.pentium_path_drops == 0) {
      max_lossless_kpps = std::max(max_lossless_kpps, p.pentium_kpps);
    }
  }
  RowHeader();
  Row("max lossless Pentium throughput", 310, max_lossless_kpps, "Kpps");
  Note("each such packet receives 1510 cycles of Pentium service on top of");
  Note("the bridge cost — which is precisely what saturates 733 MHz at ~310 Kpps.");

  Title("§4.7 experiment 2 — exceptional-packet flood (base infrastructure, max rate)");
  std::printf("%12s %14s %14s %14s\n", "exceptional", "regular Mpps", "SA Kpps", "reg. drops");
  for (double f : {0.0, 0.05, 0.10, 0.25, 0.50}) {
    auto p = RunExceptionalFlood(f);
    std::printf("%12.2f %14.3f %14.1f %14llu\n", p.exceptional_frac, p.regular_mpps, p.sa_kpps,
                static_cast<unsigned long long>(p.regular_drops));
  }
  Note("regular packets are never dropped: the MicroEngines budget enough");
  Note("resources to classify and enqueue every packet at line speed; only the");
  Note("exceptional stream is clipped once the StrongARM saturates (§4.7).");

  Title("self-healing — Pentium hangs under a 20% Pentium-share load (health monitor on)");
  const HealPoint base = RunSelfHealing(/*faulty=*/false);
  const HealPoint heal = RunSelfHealing(/*faulty=*/true);
  RowHeader();
  Row("path A during Pentium hang (shedding)", base.during_mpps, heal.during_mpps, "Mpps");
  Row("path A after recovery", base.after_mpps, heal.after_mpps, "Mpps");
  std::printf("  pentium-bound packets shed while degraded: %llu (watchdog fired %llu times)\n",
              static_cast<unsigned long long>(heal.shed),
              static_cast<unsigned long long>(heal.watchdog));
  Note("the 'paper' column is the fault-free run of the same setup: shedding keeps");
  Note("path A at its line rate while the host hangs, and the rate returns to");
  Note("baseline once the hang clears (detect -> degrade -> shed -> recover).");

  Title("overload governor — adversarial load (gig ports; conforming 100 Kpps on port 0)");
  const OverloadPoint calm =
      RunAdversarialLoad(TrafficSpec::Adversarial::kNone, /*attack=*/false,
                         /*with_control=*/false);
  std::printf("%-16s %10s %10s %8s %8s %8s %8s %6s\n", "attack", "conforming", "escal.",
              "red", "police", "quench", "shed", "attr");
  std::printf("%-16s %10llu %10llu %8llu %8llu %8llu %8llu %6s\n", "(none)",
              static_cast<unsigned long long>(calm.conforming_delivered),
              static_cast<unsigned long long>(calm.escalations),
              static_cast<unsigned long long>(calm.red),
              static_cast<unsigned long long>(calm.policed),
              static_cast<unsigned long long>(calm.quenched),
              static_cast<unsigned long long>(calm.shed_host), calm.attribution_ok ? "ok" : "BAD");
  const TrafficSpec::Adversarial kModes[] = {
      TrafficSpec::Adversarial::kMinSizeFlood,
      TrafficSpec::Adversarial::kElephantFlows,
      TrafficSpec::Adversarial::kOnOffBurst,
      TrafficSpec::Adversarial::kFlowChurn,
  };
  OverloadPoint flood;  // the min-size run carries the control-delivery rows
  bool attribution_ok = calm.attribution_ok;
  RowHeader();
  for (const auto mode : kModes) {
    const bool min_size = mode == TrafficSpec::Adversarial::kMinSizeFlood;
    const OverloadPoint p = RunAdversarialLoad(mode, /*attack=*/true, min_size);
    if (min_size) {
      flood = p;
    }
    attribution_ok = attribution_ok && p.attribution_ok;
    std::printf("%-16s %10llu %10llu %8llu %8llu %8llu %8llu %6s\n", AdversarialName(mode),
                static_cast<unsigned long long>(p.conforming_delivered),
                static_cast<unsigned long long>(p.escalations),
                static_cast<unsigned long long>(p.red),
                static_cast<unsigned long long>(p.policed),
                static_cast<unsigned long long>(p.quenched),
                static_cast<unsigned long long>(p.shed_host), p.attribution_ok ? "ok" : "BAD");
    Row(std::string("overload: conforming goodput ratio (") + AdversarialName(mode) + ")", 1.0,
        static_cast<double>(p.conforming_delivered) /
            static_cast<double>(calm.conforming_delivered),
        "ratio");
  }
  Row("overload: control delivery under flood", 100.0,
      flood.control_sent > 0 ? 100.0 * static_cast<double>(flood.control_bridged) /
                                   static_cast<double>(flood.control_sent)
                             : 0.0,
      "%");
  Row("overload: control frames shed by governor", 0.0,
      static_cast<double>(flood.control_sent - flood.control_admitted), "frames");
  Row("overload: drop attribution reconciled", 1.0, attribution_ok ? 1.0 : 0.0, "bool");
  Note("conforming goodput is deliveries on the uncontended port: the governor's");
  Note("RED / policing / quench losses land on the flooded ports only. Control");
  Note("frames arrive through flooded port 1 and every one crosses to the Pentium");
  Note("(strict-priority carve-out), even while the ladder is at hard shed.");

  Title("overload governor — 8-node sharded cluster under line-rate flood");
  const ClusterFloodPoint cf = RunClusterFlood();
  std::printf("  governor escalations %llu, external deliveries %llu, nodes up %d/8\n",
              static_cast<unsigned long long>(cf.escalations),
              static_cast<unsigned long long>(cf.delivered), cf.nodes_up);
  RowHeader();
  Row("overload: spurious reconvergences under flood", 0.0,
      static_cast<double>(cf.reconvergences), "events");
  Row("overload: suspects raised under flood", 0.0, static_cast<double>(cf.suspects), "events");
  Row("overload: nodes up after flood", 8.0, static_cast<double>(cf.nodes_up), "nodes");
  Note("every node's governor is pressured (~3 line-rate ingress streams against");
  Note("~2.3 streams of path-A capacity), yet hellos and health probes ride the");
  Note("carve-out: overload never masquerades as node death.");

  Title("experiment 5 — hitless in-service upgrade (stateful forwarder, live traffic)");
  const UpgradePoint up_control = RunUpgrade(0);
  const UpgradePoint up_hitless = RunUpgrade(1);
  const UpgradePoint up_byz = RunUpgrade(2);
  const uint64_t up_lost = up_control.forwarded - up_hitless.forwarded;
  const bool hitless_identical = up_hitless.phase == UpgradePhase::kPromoted &&
                                 up_hitless.decisions == up_control.decisions;
  // Post-rollback bit-identity: the byzantine run must diverge, then realign
  // with the control stream for good once the retained image is back.
  size_t last_diff = 0;
  bool any_diff = false;
  const size_t n = std::min(up_control.decisions.size(), up_byz.decisions.size());
  for (size_t i = 0; i < n; ++i) {
    if (up_control.decisions[i] != up_byz.decisions[i]) {
      last_diff = i;
      any_diff = true;
    }
  }
  const bool rollback_identical =
      up_byz.phase == UpgradePhase::kRolledBack && up_byz.rollbacks == 1 && any_diff &&
      up_control.decisions.size() == up_byz.decisions.size() && last_diff + 100 < n;
  RowHeader();
  Row("upgrade: conforming packets lost (in-service)", 0.0, static_cast<double>(up_lost),
      "pkts");
  Row("upgrade: hitless run bit-identical to control", 1.0,
      hitless_identical ? 1.0 : 0.0, "bool");
  Row("upgrade: byzantine image rolled back bit-identically", 1.0,
      rollback_identical && up_byz.invariants_ok ? 1.0 : 0.0, "bool");
  Note("shadow validation, atomic cutover through a state-layout migration, and");
  Note("soak-guarded promotion: the upgraded run forwards every conforming packet");
  Note("with the same per-packet decisions as a never-upgraded run, and a bad");
  Note("image rolls back to a bit-identical stream (bench/upgrade has the full");
  Note("MTTD/MTTR and 8-node rolling-upgrade acceptance rows).");

  bench::EmitJson("robustness");
  return 0;
}
