// §4.7 robustness experiments.
//
// Experiment 1: with a forwarder suite using the full VRP budget, an
// increasing share of the 1.128 Mpps line-rate load is routed through the
// Pentium. The paper found up to 310 Kpps flows through the Pentium with no
// drops anywhere, each packet receiving 1510 cycles of service.
//
// Experiment 2: an increasing percentage of packets is treated as
// exceptional (a simulated control-packet flood). Regular forwarding is
// unaffected until the StrongARM itself saturates.

// Experiment 3 (self-healing extension): the Pentium hangs while carrying a
// share of the load. With the health monitor attached the bridge sheds
// Pentium-bound packets while the host is degraded, so path A holds its
// rate during the hang and returns to baseline after recovery.

#include "bench/bench_util.h"
#include "src/fault/fault_injector.h"
#include "src/forwarders/native.h"
#include "src/forwarders/vrp_programs.h"
#include "src/health/health_monitor.h"

namespace npr {
namespace {

struct PentiumPoint {
  double offered_frac;
  double pentium_kpps;
  double fast_path_mpps;
  uint64_t regular_drops;
  uint64_t pentium_path_drops;
};

PentiumPoint RunPentiumShare(double fraction) {
  RouterConfig cfg;  // real ports at line rate
  cfg.synthetic_pentium_fraction = fraction;
  Router router(std::move(cfg));
  bench::AddDefaultRoutes(router);
  router.WarmRouteCache(64);

  // The VRP suite (§4.7: "a synthetic suite of forwarders based on the
  // examples given in Section 4.4" using the full budget).
  for (auto builder : {BuildSynMonitor, BuildAckMonitor}) {
    VrpProgram program = builder();
    InstallRequest req;
    req.key = FlowKey::All();
    req.where = Where::kMicroEngine;
    req.program = &program;
    (void)router.Install(req);
  }
  // The Pentium service: 1510 cycles per packet.
  const int idx = router.pe_forwarders().Register(
      std::make_unique<FixedCostForwarder>("service-1510", 1510));
  InstallRequest pe;
  pe.key = FlowKey::All();
  pe.where = Where::kPentium;
  pe.native_index = idx;
  // Reserve a rate admission accepts; the experiment then offers more than
  // the reservation (the paper had no admission control and simply pushed
  // load until packets dropped).
  pe.expected_pps = std::min(fraction * 1.128e6, 250e3);
  pe.expected_cpp = 1510;
  auto pe_outcome = router.Install(pe);
  if (!pe_outcome.ok) {
    std::fprintf(stderr, "pentium service install failed: %s\n", pe_outcome.error.c_str());
  }
  router.Start();

  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int p = 0; p < 8; ++p) {
    TrafficSpec spec;
    spec.rate_pps = 141'000;
    gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                static_cast<uint64_t>(p + 31)));
    gens.back()->Start(40 * kPsPerMs);
  }
  router.RunForMs(5.0);
  router.StartMeasurement();
  const uint64_t pe_before = router.stats().pentium_processed;
  const SimTime t0 = router.engine().now();
  router.RunForMs(30.0);
  const double seconds =
      static_cast<double>(router.engine().now() - t0) / static_cast<double>(kPsPerSec);

  PentiumPoint point;
  point.offered_frac = fraction;
  point.pentium_kpps =
      static_cast<double>(router.stats().pentium_processed - pe_before) / seconds / 1e3;
  point.fast_path_mpps = router.ForwardingRateMpps();
  point.regular_drops = router.queues().TotalDrops();
  point.pentium_path_drops = router.stats().dropped_queue_full - point.regular_drops;
  bench::RecordEvents(router.engine().events_run());
  return point;
}

struct FloodPoint {
  double exceptional_frac;
  double regular_mpps;
  double sa_kpps;
  uint64_t regular_drops;
};

FloodPoint RunExceptionalFlood(double fraction) {
  // Base infrastructure at maximum rate, no VRP (§4.7 experiment 2),
  // with `fraction` of packets treated as exceptional.
  RouterConfig cfg = bench::InfiniteFifoConfig();
  cfg.enable_strongarm = true;
  cfg.synthetic_exceptional_fraction = fraction;
  Router router(std::move(cfg));
  bench::AddDefaultRoutes(router);
  router.Start();
  router.RunForMs(2.0);
  router.StartMeasurement();
  const uint64_t sa_before = router.stats().sa_local_processed;
  const SimTime t0 = router.engine().now();
  router.RunForMs(10.0);
  const double seconds =
      static_cast<double>(router.engine().now() - t0) / static_cast<double>(kPsPerSec);

  FloodPoint point;
  point.exceptional_frac = fraction;
  point.regular_mpps = router.ForwardingRateMpps();
  point.sa_kpps =
      static_cast<double>(router.stats().sa_local_processed - sa_before) / seconds / 1e3;
  point.regular_drops = router.queues().TotalDrops();
  bench::RecordEvents(router.engine().events_run());
  return point;
}

struct HealPoint {
  double during_mpps = 0;  // path A while the Pentium is hanging (shedding)
  double after_mpps = 0;   // path A after faults stop and recovery completes
  uint64_t shed = 0;
  uint64_t watchdog = 0;
};

HealPoint RunSelfHealing(bool faulty) {
  RouterConfig cfg;  // real ports at line rate, a Pentium share of the load
  cfg.synthetic_pentium_fraction = 0.2;
  if (faulty) {
    FaultPlan plan;
    plan.pentium_hang_mean_ps = 4 * kPsPerMs;
    plan.pentium_hang_ps = 1500 * kPsPerUs;
    cfg.fault_plan = plan;
  }
  Router router(std::move(cfg));
  bench::AddDefaultRoutes(router);
  router.WarmRouteCache(64);
  const int idx = router.pe_forwarders().Register(
      std::make_unique<FixedCostForwarder>("service-1510", 1510));
  InstallRequest pe;
  pe.key = FlowKey::All();
  pe.where = Where::kPentium;
  pe.native_index = idx;
  pe.expected_pps = 200e3;
  pe.expected_cpp = 1510;
  (void)router.Install(pe);
  router.Start();
  HealthMonitor health(router);

  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int p = 0; p < 8; ++p) {
    TrafficSpec spec;
    spec.rate_pps = 141'000;
    gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(p), spec,
                                                static_cast<uint64_t>(p + 31)));
    gens.back()->Start(35 * kPsPerMs);
  }
  HealPoint point;
  router.RunForMs(5.0);
  router.StartMeasurement();
  router.RunForMs(12.0);  // hangs arrive here; the bridge sheds
  point.during_mpps = router.ForwardingRateMpps();
  if (router.fault_injector() != nullptr) {
    router.fault_injector()->set_armed(false);
  }
  router.RunForMs(3.0);  // recovery grace
  router.StartMeasurement();
  router.RunForMs(10.0);
  point.after_mpps = router.ForwardingRateMpps();
  point.shed = router.stats().pkts_shed_degraded;
  point.watchdog = router.stats().watchdog_fired;
  bench::RecordEvents(router.engine().events_run());
  return point;
}

}  // namespace
}  // namespace npr

int main() {
  using namespace npr;
  using namespace npr::bench;

  Title("§4.7 experiment 1 — load routed through the Pentium (line rate 1.128 Mpps)");
  std::printf("%10s %14s %14s %14s %14s\n", "fraction", "pentium Kpps", "fast Mpps",
              "reg. drops", "pe-path drops");
  double max_lossless_kpps = 0;
  for (double f : {0.05, 0.10, 0.20, 0.275, 0.35, 0.45}) {
    auto p = RunPentiumShare(f);
    std::printf("%10.3f %14.1f %14.3f %14llu %14llu\n", p.offered_frac, p.pentium_kpps,
                p.fast_path_mpps, static_cast<unsigned long long>(p.regular_drops),
                static_cast<unsigned long long>(p.pentium_path_drops));
    if (p.regular_drops == 0 && p.pentium_path_drops == 0) {
      max_lossless_kpps = std::max(max_lossless_kpps, p.pentium_kpps);
    }
  }
  RowHeader();
  Row("max lossless Pentium throughput", 310, max_lossless_kpps, "Kpps");
  Note("each such packet receives 1510 cycles of Pentium service on top of");
  Note("the bridge cost — which is precisely what saturates 733 MHz at ~310 Kpps.");

  Title("§4.7 experiment 2 — exceptional-packet flood (base infrastructure, max rate)");
  std::printf("%12s %14s %14s %14s\n", "exceptional", "regular Mpps", "SA Kpps", "reg. drops");
  for (double f : {0.0, 0.05, 0.10, 0.25, 0.50}) {
    auto p = RunExceptionalFlood(f);
    std::printf("%12.2f %14.3f %14.1f %14llu\n", p.exceptional_frac, p.regular_mpps, p.sa_kpps,
                static_cast<unsigned long long>(p.regular_drops));
  }
  Note("regular packets are never dropped: the MicroEngines budget enough");
  Note("resources to classify and enqueue every packet at line speed; only the");
  Note("exceptional stream is clipped once the StrongARM saturates (§4.7).");

  Title("self-healing — Pentium hangs under a 20% Pentium-share load (health monitor on)");
  const HealPoint base = RunSelfHealing(/*faulty=*/false);
  const HealPoint heal = RunSelfHealing(/*faulty=*/true);
  RowHeader();
  Row("path A during Pentium hang (shedding)", base.during_mpps, heal.during_mpps, "Mpps");
  Row("path A after recovery", base.after_mpps, heal.after_mpps, "Mpps");
  std::printf("  pentium-bound packets shed while degraded: %llu (watchdog fired %llu times)\n",
              static_cast<unsigned long long>(heal.shed),
              static_cast<unsigned long long>(heal.watchdog));
  Note("the 'paper' column is the fault-free run of the same setup: shedding keeps");
  Note("path A at its line rate while the host hangs, and the rate returns to");
  Note("baseline once the hang clears (detect -> degrade -> shed -> recover).");
  bench::EmitJson("robustness");
  return 0;
}
