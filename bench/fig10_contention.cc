// Figure 10: forwarding-time breakdown under maximal output-port
// contention (all traffic bound for one protected queue), versus VRP blocks
// per packet. The paper's point: time otherwise lost to lock contention is
// reclaimed as useful VRP processing — beyond enough blocks, contention
// overhead is unmeasurable.

#include "bench/bench_util.h"

namespace npr {
namespace {

// Per-packet forwarding time (ns) for the input process with all packets
// aimed at a single protected queue (max contention) or spread uniformly
// (no contention).
double NsPerPacket(int blocks, bool contended) {
  RouterConfig cfg = bench::InfiniteFifoConfig();
  cfg.output_contexts_override = 0;
  cfg.magic_drain = true;
  cfg.synthetic_single_dst = contended;
  cfg.vrp_blocks_reg = static_cast<uint32_t>(blocks);
  cfg.vrp_blocks_sram = static_cast<uint32_t>(blocks);
  const double mpps = bench::RunRate(std::move(cfg), 2.0, 8.0);
  return 1000.0 / mpps;
}

}  // namespace
}  // namespace npr

int main() {
  using namespace npr;
  using namespace npr::bench;

  Title("Figure 10 — forwarding time under maximal contention (ns/packet)");
  std::printf("%8s %14s %14s %16s\n", "blocks", "no contention", "max contention",
              "overhead (ns)");
  double overhead_at_0 = 0;
  double overhead_at_64 = 0;
  for (int blocks : {0, 8, 16, 24, 32, 48, 64}) {
    const double base = NsPerPacket(blocks, false);
    const double contended = NsPerPacket(blocks, true);
    const double overhead = contended - base;
    if (blocks == 0) {
      overhead_at_0 = overhead;
    }
    if (blocks == 64) {
      overhead_at_64 = overhead;
    }
    std::printf("%8d %14.1f %14.1f %16.1f\n", blocks, base, contended, overhead);
  }

  Title("Shape check (§4.2)");
  RowHeader();
  Row("contention overhead at 0 blocks", 312, overhead_at_0, "ns");
  Row("contention overhead at 64 blocks", 0, overhead_at_64, "ns");
  Note("the reclaimable-overhead effect: once VRP processing paces the input");
  Note("below the serialized enqueue rate, lock contention costs nothing —");
  Note("'these resources can be reclaimed by increasing the VRP budget'.");
  bench::EmitJson("fig10_contention");
  return 0;
}
