// §3.4.1's unevaluated idea, evaluated: approximating weighted fair
// queueing by selecting the priority queue on the input side.
//
// "When multiple queues are available at each output context and when these
// have fixed priority levels, the larger computing capacity available in
// input-side protocol processing could be used to select the appropriate
// priority queue and thereby approximate more complex schemes, such as
// weighted fair queuing. We have not evaluated this in detail."
//
// Setup: two flows at equal offered rates converge on one 100 Mbps port at
// 2x line rate. Three policies compared: plain FIFO (one queue), strict
// per-flow priority, and the WFQ approximation with 3:1 weights.

#include "bench/bench_util.h"
#include "src/forwarders/vrp_programs.h"
#include "src/vrp/assembler.h"

namespace npr {
namespace {

struct FairnessResult {
  uint64_t flow_a = 0;
  uint64_t flow_b = 0;
  double Ratio() const {
    return flow_b == 0 ? 0 : static_cast<double>(flow_a) / static_cast<double>(flow_b);
  }
};

enum class Policy { kFifo, kStrictPriority, kWfq31 };

FairnessResult RunPolicy(Policy policy) {
  RouterConfig cfg;
  cfg.queues_per_port = policy == Policy::kFifo ? 1 : 2;
  cfg.output_servicing = policy == Policy::kFifo ? OutputServicing::kSingleQueueBatching
                                                 : OutputServicing::kMultiQueueIndirection;
  cfg.classifier = ClassifierMode::kFlowTable;
  cfg.queue_capacity = 128;
  Router router(std::move(cfg));
  bench::AddDefaultRoutes(router);
  router.WarmRouteCache(64);

  FairnessResult result;
  router.port(2).SetSink([&result](Packet&& packet) {
    auto ip = Ipv4Header::Parse(packet.l3());
    if (ip && ip->src == SrcIpForPort(0, 1)) {
      ++result.flow_a;
    } else {
      ++result.flow_b;
    }
  });

  auto install_per_flow = [&](uint8_t src_port_id, const VrpProgram& program,
                              uint32_t weight) -> uint32_t {
    InstallRequest req;
    req.key = FlowKey::Tuple(SrcIpForPort(src_port_id, 1), DstIpForPort(2, 1), 1024, 80);
    req.where = Where::kMicroEngine;
    req.program = &program;
    auto outcome = router.Install(req);
    if (outcome.ok && weight > 0) {
      auto state = router.GetData(outcome.fid);
      std::memcpy(state.data(), &weight, 4);
      router.SetData(outcome.fid, state);
    }
    return outcome.ok ? outcome.fid : 0;
  };

  VrpProgram wfq = BuildWfqApproximator();
  auto demote = Assemble("demote", "setq 1\nsend\n");
  switch (policy) {
    case Policy::kFifo:
      break;  // one shared queue, no per-flow programs
    case Policy::kStrictPriority:
      // Flow A keeps priority 0; flow B demoted outright.
      install_per_flow(1, demote.program, 0);
      break;
    case Policy::kWfq31:
      // Deficit weights 3 (flow A) : 1 (flow B) of the 4-packet frame.
      install_per_flow(0, wfq, 3);
      install_per_flow(1, wfq, 1);
      break;
  }
  router.Start();

  std::vector<std::unique_ptr<TrafficGen>> gens;
  for (int src = 0; src < 2; ++src) {
    TrafficSpec spec;
    spec.rate_pps = 141'000;
    spec.poisson = true;  // break inter-source phase locking
    spec.pattern = TrafficSpec::DstPattern::kSinglePort;
    spec.single_dst_port = 2;
    spec.protocol = kIpProtoTcp;
    gens.push_back(std::make_unique<TrafficGen>(router.engine(), router.port(src), spec,
                                                static_cast<uint64_t>(src + 1)));
    gens.back()->Start(30 * kPsPerMs);
  }
  router.RunForMs(35.0);
  bench::RecordEvents(router.engine().events_run());
  return result;
}

}  // namespace
}  // namespace npr

int main() {
  using namespace npr;
  using namespace npr::bench;

  Title("§3.4.1 extension — input-side WFQ approximation (2:1 overload of one port)");
  std::printf("%-28s %12s %12s %12s\n", "policy", "flow A", "flow B", "A:B ratio");
  const auto fifo = RunPolicy(Policy::kFifo);
  std::printf("%-28s %12llu %12llu %12.2f\n", "single FIFO queue",
              static_cast<unsigned long long>(fifo.flow_a),
              static_cast<unsigned long long>(fifo.flow_b), fifo.Ratio());
  const auto strict = RunPolicy(Policy::kStrictPriority);
  std::printf("%-28s %12llu %12llu %12.2f\n", "strict priority (A over B)",
              static_cast<unsigned long long>(strict.flow_a),
              static_cast<unsigned long long>(strict.flow_b), strict.Ratio());
  const auto wfq = RunPolicy(Policy::kWfq31);
  std::printf("%-28s %12llu %12llu %12.2f\n", "WFQ approximation, 3:1",
              static_cast<unsigned long long>(wfq.flow_a),
              static_cast<unsigned long long>(wfq.flow_b), wfq.Ratio());

  Note("expected: FIFO ~1:1 (no differentiation); strict priority leaves B only");
  Note("the port's slack; the WFQ approximation approaches the configured 3:1 —");
  Note("weighted fairness from a 13-instruction VRP program, as §3.4.1");
  Note("conjectured. (Exact 3:1 would need per-queue WFQ at the output too.)");
  bench::EmitJson("wfq_approximation");
  return 0;
}
