// Per-run heap-allocation counter for the benches.
//
// Every bench binary links this TU, which interposes the global operator
// new family and counts allocations into one relaxed atomic. EmitJson()
// reads the total through AllocCount() and publishes it as the "allocs"
// field of BENCH_<name>.json, giving CI a direct, scrape-free view of how
// many heap allocations a run performed — the number the pooled data path
// exists to drive toward zero.
//
// The interposers are compiled only into Release (NDEBUG) non-sanitized
// builds: sanitizers ship their own operator new and must keep it, and
// Debug timing is not what the ceiling in ci/perf_smoke.sh guards. When
// the interposers are absent AllocCount() stays 0, which the CI check
// treats as "not counted" and skips.

#include <atomic>
#include <cstdint>

namespace npr {
namespace bench {
namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

uint64_t AllocCount() { return g_allocs.load(std::memory_order_relaxed); }

namespace internal {
inline void CountAlloc() { g_allocs.fetch_add(1, std::memory_order_relaxed); }
}  // namespace internal
}  // namespace bench
}  // namespace npr

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define NPR_ALLOC_COUNT_OFF 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define NPR_ALLOC_COUNT_OFF 1
#endif
#if !defined(NDEBUG)
#define NPR_ALLOC_COUNT_OFF 1
#endif

#if !defined(NPR_ALLOC_COUNT_OFF)

#include <cstdlib>
#include <new>

namespace {

void* CountedAlloc(std::size_t n) {
  npr::bench::internal::CountAlloc();
  void* p = std::malloc(n != 0 ? n : 1);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* CountedAlignedAlloc(std::size_t n, std::align_val_t al) {
  npr::bench::internal::CountAlloc();
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), n != 0 ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  npr::bench::internal::CountAlloc();
  return std::malloc(n != 0 ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  npr::bench::internal::CountAlloc();
  return std::malloc(n != 0 ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t al) { return CountedAlignedAlloc(n, al); }
void* operator new[](std::size_t n, std::align_val_t al) { return CountedAlignedAlloc(n, al); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

#endif  // !NPR_ALLOC_COUNT_OFF
