// Figure 8's three switching paths, measured as per-packet latency
// distributions at light load:
//   path A — MicroEngines only (the fast path);
//   path B — via the StrongARM (exceptional / SA-flow packets);
//   path C — via the Pentium (control / PE-flow packets).
// The §3.5.1 in-text figure: a fast-path packet "experiences 3550 ns of
// delay" through the pipeline (280 instruction cycles + 430 cycles of
// memory delay, at 5 ns/cycle).

#include "bench/bench_util.h"
#include "src/forwarders/native.h"

namespace npr {
namespace {

struct LatencyResult {
  double mean_ns = 0;
  double p99_ns = 0;
  uint64_t n = 0;
};

LatencyResult Measure(Where level) {
  RouterConfig cfg;
  cfg.classifier = ClassifierMode::kFlowTable;
  Router router(std::move(cfg));
  bench::AddDefaultRoutes(router);
  router.WarmRouteCache(64);
  router.Start();

  PacketSpec spec;
  spec.dst_ip = DstIpForPort(2, 1);
  spec.protocol = kIpProtoTcp;
  spec.src_port = 5000;
  spec.dst_port = 80;

  if (level != Where::kMicroEngine) {
    const int idx = level == Where::kStrongArm
                        ? router.sa_forwarders().Register(std::make_unique<NullForwarder>(150))
                        : router.pe_forwarders().Register(
                              std::make_unique<FixedCostForwarder>("svc", 500));
    InstallRequest req;
    req.key = FlowKey::Tuple(spec.src_ip, spec.dst_ip, 5000, 80);
    req.where = level;
    req.native_index = idx;
    req.expected_pps = 20'000;
    auto outcome = router.Install(req);
    if (!outcome.ok) {
      std::fprintf(stderr, "install failed: %s\n", outcome.error.c_str());
      return {};
    }
  }

  // Light load: 10 Kpps, one packet in the router at a time.
  for (int i = 0; i < 300; ++i) {
    router.engine().Schedule(static_cast<SimTime>(i) * (kPsPerSec / 10'000),
                             [&router, spec] {
                               Packet p = BuildPacket(spec);
                               p.set_created(router.engine().now());
                               router.port(0).InjectFromWire(std::move(p));
                             });
    if (i == 0) {
      router.StartMeasurement();
    }
  }
  router.RunForMs(40.0);
  bench::RecordEvents(router.engine().events_run());

  LatencyResult r;
  r.mean_ns = router.stats().latency_ns.mean();
  r.p99_ns = router.stats().latency_ns.Percentile(99);
  r.n = router.stats().latency_ns.count();
  return r;
}

}  // namespace
}  // namespace npr

int main() {
  using namespace npr;
  using namespace npr::bench;

  Title("Figure 8 — per-path latency at light load (64 B packets, ns)");
  std::printf("%-44s %10s %10s %8s\n", "path", "mean", "p99", "packets");
  const auto a = Measure(Where::kMicroEngine);
  std::printf("%-44s %10.0f %10.0f %8llu\n", "A: MicroEngines only (fast path)", a.mean_ns,
              a.p99_ns, static_cast<unsigned long long>(a.n));
  const auto b = Measure(Where::kStrongArm);
  std::printf("%-44s %10.0f %10.0f %8llu\n", "B: via the StrongARM", b.mean_ns, b.p99_ns,
              static_cast<unsigned long long>(b.n));
  const auto c = Measure(Where::kPentium);
  std::printf("%-44s %10.0f %10.0f %8llu\n", "C: via the Pentium (PCI round trip)", c.mean_ns,
              c.p99_ns, static_cast<unsigned long long>(c.n));

  Title("§3.5.1 in-text cross-check");
  RowHeader();
  Row("fast-path pipeline delay", 3550, a.mean_ns, "ns");
  Note("the paper derives 3550 ns (710 cycles) for one packet through the");
  Note("pipeline; our measured figure adds the store-and-forward wait between");
  Note("the stages and the token rotation at light load.");
  Note("expected ordering: A < B < C, each level adding its access cost (§2).");
  bench::EmitJson("path_latency");
  return 0;
}
